"""Figure 11 — sensitivity of ScoRD's overhead to memory resources.

Three bars per application: ScoRD's cycles normalized to the no-detection
cycles *of the same memory configuration*, for LOW (half the L2 capacity
and DRAM channels), DEFAULT, and HIGH (double both).  The paper: overhead
grows as the memory system shrinks — metadata fights data harder for L2
and bandwidth — except for 1DC, whose baseline degrades relatively more.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.experiments.runner import Runner
from repro.experiments.tables import render_table
from repro.scor.apps.registry import ALL_APPS

_PRESETS = ("low", "default", "high")


@dataclasses.dataclass
class Fig11Result:
    rows: List[Tuple[str, float, float, float]]  # app, low, default, high

    def render(self) -> str:
        rows = [
            (app, f"{low:.2f}", f"{mid:.2f}", f"{high:.2f}")
            for app, low, mid, high in self.rows
        ]
        n = len(self.rows)
        rows.append(
            (
                "AVG",
                f"{sum(r[1] for r in self.rows) / n:.2f}",
                f"{sum(r[2] for r in self.rows) / n:.2f}",
                f"{sum(r[3] for r in self.rows) / n:.2f}",
            )
        )
        return render_table(
            "Figure 11: ScoRD overhead vs memory resources "
            "(normalized to no detection per configuration)",
            ["workload", "low mem", "default", "high mem"],
            rows,
            note=(
                "Paper: overhead increases with a more constrained memory "
                "subsystem (except 1DC)."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import grouped_bars

        labels = [app for app, _l, _m, _h in self.rows]
        return grouped_bars(
            "Figure 11 (bars): overhead vs memory resources",
            labels,
            [
                ("low", [low for _a, low, _m, _h in self.rows]),
                ("default", [mid for _a, _l, mid, _h in self.rows]),
                ("high", [high for _a, _l, _m, high in self.rows]),
            ],
            reference=1.0,
            reference_label="no detection (1.0)",
        )


def run_fig11(runner: Runner) -> Fig11Result:
    rows = []
    for app_cls in ALL_APPS:
        values = []
        for preset in _PRESETS:
            none = runner.run(app_cls, detector="none", memory=preset)
            scord = runner.run(app_cls, detector="scord", memory=preset)
            values.append(scord.cycles / none.cycles)
        rows.append((app_cls.name, *values))
    return Fig11Result(rows)
