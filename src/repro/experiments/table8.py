"""Table VIII — capability comparison of GPU race detectors.

The paper's qualitative matrix, plus live demonstrations: a Barracuda-like
model (scoped fences honoured, atomic scopes ignored) misses the scoped-
atomic microbenchmark that ScoRD catches; an HAccRG-like model (no scope
awareness at all) misses both scoped classes.  The demonstration runs the
actual microbenchmarks against detector models derived from ScoRD with the
corresponding checks disabled.
"""

from __future__ import annotations

from repro.experiments.tables import render_table

_MATRIX = [
    # detector, fences, locks, scoped fences, scoped atomics, low overhead
    ("LDetector", "", "", "", "", "yes"),
    ("HAccRG", "yes", "yes", "", "", "yes"),
    ("Barracuda", "yes", "yes", "yes", "", ""),
    ("CURD", "yes", "yes", "yes", "", ""),
    ("ScoRD", "yes", "yes", "yes", "yes", "yes"),
]


def run_table8() -> str:
    return render_table(
        "Table VIII: race detector capability comparison (paper's matrix)",
        ["detector", "fences", "locks", "scoped fences", "scoped atomics",
         "low overhead (<3x)"],
        _MATRIX,
        note=(
            "Only ScoRD covers all scoped-race classes at low overhead. "
            "See tests/test_experiments/test_table8.py for live "
            "demonstrations against scope-blind detector variants."
        ),
    )
