"""ASCII bar charts for the figure exhibits.

The paper's Figs. 8–11 are bar charts; the text tables carry the numbers,
and these renderers carry the *shape* — grouped and stacked horizontal
bars scaled to a character budget, so a terminal diff of two runs shows
where bars moved.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_FULL = "█"
_PARTS = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    """Render *value* as a bar of at most *width* characters."""
    if value <= 0 or scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    bar = _FULL * min(whole, width)
    if whole < width and frac:
        bar += _PARTS[frac]
    return bar


def grouped_bars(
    title: str,
    labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 40,
    reference: Optional[float] = None,
    reference_label: str = "",
) -> str:
    """Horizontal grouped bar chart: one group per label, one bar per series.

    *reference* draws a vertical tick at that value on every bar line
    (e.g. 1.0 for "no overhead").
    """
    peak = max(
        (max(values) for _name, values in series if values), default=1.0
    )
    if reference is not None:
        peak = max(peak, reference)
    # Every group may have been filtered out (e.g. all runs FAILED):
    # render a bare title rather than crashing the exhibit.
    name_width = max((len(name) for name, _ in series), default=0)
    label_width = max((len(label) for label in labels), default=0)
    ref_col = (
        int(reference / peak * width) if reference is not None else None
    )

    lines = [f"=== {title} ==="]
    for index, label in enumerate(labels):
        for si, (name, values) in enumerate(series):
            value = values[index]
            bar = _bar(value, peak, width)
            if ref_col is not None and len(bar) < ref_col:
                bar = bar + " " * (ref_col - len(bar)) + "|"
            prefix = label if si == 0 else ""
            lines.append(
                f"{prefix:>{label_width}}  {name:<{name_width}} "
                f"{bar} {value:.2f}"
            )
        lines.append("")
    if reference is not None and reference_label:
        lines.append(f"(| marks {reference_label})")
    return "\n".join(lines)


def stacked_bars(
    title: str,
    labels: Sequence[str],
    components: Sequence[Tuple[str, str, Sequence[float]]],
    width: int = 40,
) -> str:
    """Horizontal stacked bars: components are (name, glyph, values)."""
    totals = [
        sum(values[i] for _n, _g, values in components)
        for i in range(len(labels))
    ]
    peak = max(totals, default=1.0) or 1.0
    label_width = max((len(label) for label in labels), default=0)

    lines = [f"=== {title} ==="]
    for index, label in enumerate(labels):
        bar = ""
        for _name, glyph, values in components:
            cells = int(round(values[index] / peak * width))
            bar += glyph * cells
        lines.append(
            f"{label:>{label_width}}  {bar} {totals[index]:.2f}"
        )
    legend = "  ".join(
        f"{glyph}={name}" for name, glyph, _values in components
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
