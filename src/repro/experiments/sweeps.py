"""Generic sensitivity sweeps over hardware and detector parameters.

Beyond the paper's fixed exhibits, this utility answers "how does ScoRD's
overhead move if I change X?" for any numeric field of
:class:`~repro.arch.config.GPUConfig` or
:class:`~repro.arch.detector_config.DetectorConfig`:

    from repro.experiments.sweeps import sweep_gpu_param
    result = sweep_gpu_param("noc_bytes_per_cycle", (8, 16, 32))
    print(result.render())

Each sweep point runs the chosen application twice (with and without
detection, both at the modified configuration) and reports the normalized
overhead — the same methodology as Fig. 11, generalized.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple, Type

from repro.arch.config import GPUConfig
from repro.arch.detector_config import DetectorConfig
from repro.common.errors import ConfigError
from repro.experiments.tables import render_table
from repro.scor.apps.base import ScorApp, run_app
from repro.scor.apps.reduction import ReductionApp


@dataclasses.dataclass
class SweepPoint:
    value: object
    cycles_none: int
    cycles_scord: int

    @property
    def overhead(self) -> float:
        return self.cycles_scord / max(1, self.cycles_none)


@dataclasses.dataclass
class SweepResult:
    param: str
    app: str
    points: List[SweepPoint]

    def render(self) -> str:
        rows = [
            (
                point.value,
                point.cycles_none,
                point.cycles_scord,
                f"{point.overhead:.2f}",
            )
            for point in self.points
        ]
        return render_table(
            f"Sweep: {self.param} ({self.app})",
            [self.param, "cycles (none)", "cycles (ScoRD)", "overhead"],
            rows,
        )

    def overheads(self) -> List[float]:
        return [point.overhead for point in self.points]


def _run_point(app_cls: Type[ScorApp], gpu_config: GPUConfig,
               detector_config: DetectorConfig) -> int:
    app = app_cls()
    gpu = run_app(app, detector_config=detector_config, gpu_config=gpu_config)
    return gpu.total_cycles


def sweep_gpu_param(
    param: str,
    values: Sequence[object],
    app_cls: Type[ScorApp] = ReductionApp,
    base_config: GPUConfig = None,
) -> SweepResult:
    """Sweep a :class:`GPUConfig` field; returns overheads per value."""
    base = base_config if base_config is not None else GPUConfig.scaled_default()
    if not hasattr(base, param):
        raise ConfigError(f"GPUConfig has no field {param!r}")
    points = []
    for value in values:
        config = dataclasses.replace(base, **{param: value})
        points.append(
            SweepPoint(
                value,
                _run_point(app_cls, config, DetectorConfig.none()),
                _run_point(app_cls, config, DetectorConfig.scord()),
            )
        )
    return SweepResult(param, app_cls.name, points)


def sweep_detector_param(
    param: str,
    values: Sequence[object],
    app_cls: Type[ScorApp] = ReductionApp,
    base_config: GPUConfig = None,
) -> SweepResult:
    """Sweep a :class:`DetectorConfig` field (the no-detection baseline is
    computed once; only the ScoRD side varies)."""
    gpu_config = base_config if base_config is not None else GPUConfig.scaled_default()
    scord = DetectorConfig.scord()
    if not hasattr(scord, param):
        raise ConfigError(f"DetectorConfig has no field {param!r}")
    baseline = _run_point(app_cls, gpu_config, DetectorConfig.none())
    points = []
    for value in values:
        config = dataclasses.replace(scord, **{param: value})
        points.append(
            SweepPoint(
                value,
                baseline,
                _run_point(app_cls, gpu_config, config),
            )
        )
    return SweepResult(param, app_cls.name, points)
