"""Table VI — number of races caught by each detector configuration.

For every application race flag (26 across the seven applications) and
every racey microbenchmark (18), the workload runs once under the base
design without metadata caching and once under full ScoRD; a race counts
as *caught* when a race of the expected type is reported.  The paper finds
44/44 for the base design and 43/44 for ScoRD — the single false negative
caused by aliasing in the direct-mapped metadata cache.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner
from repro.experiments.tables import failed_cell, render_table
from repro.arch.detector_config import DetectorConfig
from repro.scor.apps.registry import ALL_APPS
from repro.scor.micro.base import run_micro
from repro.scor.micro.registry import racey_micros


@dataclasses.dataclass
class Table6Detail:
    """Per-race outcome (one planted race = one row of the detail view)."""

    workload: str
    race: str
    expected: str
    base_caught: bool
    scord_caught: bool


@dataclasses.dataclass
class Table6Row:
    workload: str
    present: int
    base_caught: int
    scord_caught: int
    scord_missed: Tuple[str, ...] = ()
    details: Tuple[Table6Detail, ...] = ()


@dataclasses.dataclass
class Table6Result:
    rows: List[Table6Row]

    @property
    def totals(self) -> Table6Row:
        return Table6Row(
            "Total",
            sum(r.present for r in self.rows),
            sum(r.base_caught for r in self.rows),
            sum(r.scord_caught for r in self.rows),
        )

    def render(self) -> str:
        table_rows = [
            (r.workload, r.present, r.base_caught, r.scord_caught)
            for r in self.rows
        ]
        t = self.totals
        table_rows.append((t.workload, t.present, t.base_caught, t.scord_caught))
        missed = [
            f"{r.workload}:{flag}" for r in self.rows for flag in r.scord_missed
        ]
        note = (
            "Paper: 44 present, 44 caught by the base design, 43 by ScoRD "
            "(one metadata-cache aliasing false negative)."
        )
        if missed:
            note += f"\nScoRD misses in this run: {', '.join(missed)}"
        return render_table(
            "Table VI: races caught by detector configuration",
            ["workload", "present", "base w/o caching", "ScoRD"],
            table_rows,
            note=note,
        )

    def render_detail(self) -> str:
        """Per-race listing of all 44 planted races and their outcomes."""
        rows = []
        for row in self.rows:
            for detail in row.details:
                rows.append(
                    (
                        detail.workload,
                        detail.race,
                        detail.expected,
                        "yes" if detail.base_caught else "NO",
                        "yes" if detail.scord_caught else "NO",
                    )
                )
        return render_table(
            "Table VI (detail): every planted race",
            ["workload", "race", "expected type(s)", "base", "ScoRD"],
            rows,
        )


def _caught(record, expected_types) -> bool:
    return bool(expected_types & record.race_types)


def run_table6(runner: Runner) -> Table6Result:
    rows: List[Table6Row] = []
    for app_cls in ALL_APPS:
        base_caught = 0
        scord_caught = 0
        missed: List[str] = []
        details: List[Table6Detail] = []
        for flag in app_cls.RACE_FLAGS:
            expected = ",".join(sorted(t.value for t in flag.expected_types))
            try:
                base = runner.run(app_cls, detector="base", races=(flag.name,))
                scord = runner.run(
                    app_cls, detector="scord", races=(flag.name,)
                )
            except ReproError as err:
                # A failed run can't catch its race: count it missed but
                # keep the rest of the table.
                missed.append(f"{flag.name}[{failed_cell(error_code(err))}]")
                details.append(
                    Table6Detail(app_cls.name, flag.name, expected,
                                 False, False)
                )
                continue
            base_ok = _caught(base, flag.expected_types)
            scord_ok = _caught(scord, flag.expected_types)
            base_caught += base_ok
            scord_caught += scord_ok
            if not scord_ok:
                missed.append(flag.name)
            details.append(
                Table6Detail(
                    app_cls.name,
                    flag.name,
                    expected,
                    base_ok,
                    scord_ok,
                )
            )
        rows.append(
            Table6Row(
                app_cls.name,
                app_cls.races_present(),
                base_caught,
                scord_caught,
                tuple(missed),
                tuple(details),
            )
        )

    base_micro = 0
    scord_micro = 0
    micro_missed: List[str] = []
    micro_details: List[Table6Detail] = []
    micros = racey_micros()
    for micro in micros:
        try:
            base_gpu = run_micro(
                micro, detector_config=DetectorConfig.base_no_cache()
            )
            scord_gpu = run_micro(micro, detector_config=DetectorConfig.scord())
        except ReproError as err:
            micro_missed.append(
                f"{micro.name}[{failed_cell(error_code(err))}]"
            )
            micro_details.append(
                Table6Detail(
                    "micro",
                    micro.name,
                    ",".join(sorted(t.value for t in micro.expected_types)),
                    False,
                    False,
                )
            )
            continue
        base_types = {r.race_type for r in base_gpu.races.unique_races}
        scord_types = {r.race_type for r in scord_gpu.races.unique_races}
        base_ok = bool(micro.expected_types & base_types)
        scord_ok = bool(micro.expected_types & scord_types)
        base_micro += base_ok
        scord_micro += scord_ok
        if not scord_ok:
            micro_missed.append(micro.name)
        micro_details.append(
            Table6Detail(
                "micro",
                micro.name,
                ",".join(sorted(t.value for t in micro.expected_types)),
                base_ok,
                scord_ok,
            )
        )
    rows.append(
        Table6Row(
            "Microbenchmarks",
            len(micros),
            base_micro,
            scord_micro,
            tuple(micro_missed),
            tuple(micro_details),
        )
    )
    return Table6Result(rows)
