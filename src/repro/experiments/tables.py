"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def failed_cell(reason: str) -> str:
    """The marker exhibits print for a run that failed permanently.

    Campaign degradation contract: a failed simulation costs its cells,
    not the table — the rest of the exhibit still renders.
    """
    return f"FAILED({reason})"


def is_failed(cell: object) -> bool:
    """Is *cell* a :func:`failed_cell` marker (vs a real value)?"""
    return isinstance(cell, str) and cell.startswith("FAILED(")


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned monospace table with a title bar."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    bar = "-" * len(line(headers))
    out = [f"=== {title} ===", line(headers), bar]
    out.extend(line(row) for row in str_rows)
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
