"""Command-line front-end: ``scord-experiments [exhibit ...]``.

Runs the requested exhibits (or ``all``) and prints the paper-style tables
to stdout.  Exhibits sharing simulations reuse them through the memoizing
runner, so ``scord-experiments all`` is much cheaper than the sum of the
parts.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.runner import Runner
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.table8 import run_table8

EXHIBITS = ("table1", "table2", "table6", "table7", "table8",
            "fig8", "fig9", "fig10", "fig11", "ablations", "litmus")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="scord-experiments",
        description="Regenerate the tables and figures of the ScoRD paper.",
    )
    parser.add_argument(
        "exhibits",
        nargs="*",
        default=["all"],
        help=f"any of {', '.join(EXHIBITS)}, or 'all' (default)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--dump",
        metavar="PATH",
        help="write every simulation's raw record to PATH as JSON",
    )
    args = parser.parse_args(argv)

    wanted = list(args.exhibits)
    if "all" in wanted:
        wanted = list(EXHIBITS)
    unknown = [name for name in wanted if name not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibit(s): {', '.join(unknown)}")

    runner = Runner(verbose=not args.quiet)
    started = time.time()
    for name in wanted:
        if name == "table1":
            print(run_table1().render())
        elif name == "table2":
            print(run_table2())
        elif name == "table6":
            result = run_table6(runner)
            print(result.render())
            print()
            print(result.render_detail())
        elif name == "table7":
            print(run_table7(runner).render())
        elif name == "table8":
            print(run_table8())
        elif name == "fig8":
            result = run_fig8(runner)
            print(result.render())
            print()
            print(result.chart())
        elif name == "fig9":
            result = run_fig9(runner)
            print(result.render())
            print()
            print(result.chart())
        elif name == "fig10":
            result = run_fig10(runner)
            print(result.render())
            print()
            print(result.chart())
        elif name == "fig11":
            result = run_fig11(runner)
            print(result.render())
            print()
            print(result.chart())
        elif name == "ablations":
            from repro.experiments.ablations import run_all_ablations

            for table in run_all_ablations().values():
                print(table)
                print()
        elif name == "litmus":
            from repro.litmus import ALL_LITMUS_TESTS, run_litmus

            print("=== Scoped memory-model litmus tests ===")
            for test in ALL_LITMUS_TESTS:
                result = run_litmus(test)
                verdict = "ok" if result.ok else "VIOLATION"
                print(f"[{verdict}] {result.summary()}")
        print()
    if args.dump:
        runner.dump_json(args.dump)
        print(f"[raw records written to {args.dump}]", file=sys.stderr)
    print(
        f"[{runner.runs_done()} unique simulations, "
        f"{time.time() - started:.0f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
