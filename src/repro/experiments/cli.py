"""Command-line front-end: ``scord-experiments [exhibit ...]``.

Runs the requested exhibits (or ``all``) and prints the paper-style tables
to stdout.  Exhibits sharing simulations reuse them through the memoizing
runner, so ``scord-experiments all`` is much cheaper than the sum of the
parts.

Resilience (see docs/architecture.md, "Resilience"):

* ``--store PATH`` checkpoints every completed simulation to a durable
  JSONL store; ``--resume`` preloads it, so a killed campaign restarts
  without re-simulating finished runs.
* ``--isolate`` runs each simulation in a worker subprocess;
  ``--timeout``/``--max-retries`` (which imply ``--isolate``) bound and
  retry hung or crashed workers.
* A failing run costs its table cells (``FAILED(reason)``), a failing
  exhibit costs one structured error line — never the campaign.  The
  exit code is non-zero if anything failed, and ``--manifest PATH``
  writes a machine-readable failure manifest.

Parallelism and caching (see docs/architecture.md, "Parallel campaigns"):

* ``--jobs N`` (implies ``--isolate``) shards the campaign's work units
  across N concurrent workers with work stealing and a deterministic
  merge — results are identical to ``--jobs 1``.  By default the units
  are served by a supervised pool of persistent warm workers
  (``--pool``; see docs/architecture.md §11) with heartbeat liveness,
  crash recycling, and graceful degradation; ``--no-pool`` reverts to a
  fresh subprocess per unit.  ``--worker-ttl`` / ``--max-worker-restarts``
  tune the pool's recycling policy, and ``--chaos-kill-every N``
  deliberately SIGKILLs a worker every Nth unit (resilience drills).
* ``--cache-dir PATH`` layers a content-addressed result cache over the
  runs: units are keyed by a stable hash of the resolved configs, kernel
  identity, seed, and schema version, so re-runs and overlapping
  exhibits hit disk instead of re-simulating; ``--no-cache`` disables.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner

EXHIBITS = ("table1", "table2", "table6", "table7", "table8",
            "fig8", "fig9", "fig10", "fig11", "ablations", "litmus",
            "lint_table")

#: exhibits whose simulations flow through the shared Runner — the ones a
#: parallel prefetch can plan and shard.  The rest (micros, litmus,
#: ablations) simulate inline and are cheap.
RUNNER_EXHIBITS = ("table6", "table7", "fig8", "fig9", "fig10", "fig11")


# ----------------------------------------------------------------------
# Exhibit dispatch (uniform: name -> callable(runner) -> printable text)
# ----------------------------------------------------------------------
def _table1(runner: Runner) -> str:
    from repro.experiments.table1 import run_table1

    return run_table1().render()


def _table2(runner: Runner) -> str:
    from repro.experiments.table2 import run_table2

    return str(run_table2())


def _table6(runner: Runner) -> str:
    from repro.experiments.table6 import run_table6

    result = run_table6(runner)
    return result.render() + "\n\n" + result.render_detail()


def _table7(runner: Runner) -> str:
    from repro.experiments.table7 import run_table7

    return run_table7(runner).render()


def _table8(runner: Runner) -> str:
    from repro.experiments.table8 import run_table8

    return str(run_table8())


def _figure(run):
    def render(runner: Runner) -> str:
        result = run(runner)
        return result.render() + "\n\n" + result.chart()

    return render


def _ablations(runner: Runner) -> str:
    from repro.experiments.ablations import run_all_ablations

    parts = []
    for table in run_all_ablations().values():
        parts.append(str(table))
        parts.append("")
    return "\n".join(parts).rstrip()


def _litmus(runner: Runner) -> str:
    from repro.litmus import ALL_LITMUS_TESTS, run_litmus

    lines = ["=== Scoped memory-model litmus tests ==="]
    for test in ALL_LITMUS_TESTS:
        result = run_litmus(test)
        verdict = "ok" if result.ok else "VIOLATION"
        lines.append(f"[{verdict}] {result.summary()}")
    return "\n".join(lines)


def _lint_table(runner: Runner) -> str:
    from repro.experiments.lint_table import run_lint_table

    return run_lint_table(runner).render()


def _exhibit_runners():
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.fig10 import run_fig10
    from repro.experiments.fig11 import run_fig11

    return {
        "table1": _table1,
        "table2": _table2,
        "table6": _table6,
        "table7": _table7,
        "table8": _table8,
        "fig8": _figure(run_fig8),
        "fig9": _figure(run_fig9),
        "fig10": _figure(run_fig10),
        "fig11": _figure(run_fig11),
        "ablations": _ablations,
        "litmus": _litmus,
        "lint_table": _lint_table,
    }


# ----------------------------------------------------------------------
#: subcommand -> one-line description.  Each line names the doc page
#: that covers the subcommand; tests/test_cli_help.py pins the rendered
#: help against tests/golden/cli_help.txt so these stay in sync with
#: docs/README.md.
SUBCOMMANDS = (
    ("run", "run paper exhibits as an offline campaign "
            "(docs/architecture.md)"),
    ("lint", "statically lint kernels for scope misuse "
             "(docs/scolint.md)"),
    ("fuzz", "differential kernel fuzzing with constructed ground "
             "truth (docs/fuzzing.md)"),
    ("mc", "bounded DPOR schedule exploration over litmus kernels "
           "(docs/model_checking.md)"),
    ("explain", "render race forensics bundles as human-readable "
                "reports (docs/forensics.md)"),
    ("report", "render a text dashboard from telemetry artifacts "
               "(docs/architecture.md)"),
    ("serve", "race-checking as a service: HTTP daemon over the "
              "shared worker pool (docs/service.md)"),
)


def _subcommand_epilog() -> str:
    lines = ["subcommands:"]
    for name, blurb in SUBCOMMANDS:
        lines.append(f"  {name:<9}{blurb}")
    lines.append(
        "\nBare exhibit names (no subcommand) are equivalent to 'run'."
    )
    return "\n".join(lines)


def _help_formatter(prog):
    # Fixed width keeps --help byte-identical across terminals, so the
    # committed golden (tests/golden/cli_help.txt) diffs cleanly.
    return argparse.RawDescriptionHelpFormatter(prog, width=78)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scord-experiments",
        description="Regenerate the tables and figures of the ScoRD paper.",
        epilog=_subcommand_epilog(),
        formatter_class=_help_formatter,
    )
    parser.add_argument(
        "exhibits",
        nargs="*",
        default=["all"],
        help=f"any of {', '.join(EXHIBITS)}, or 'all' (default)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--dump",
        metavar="PATH",
        help="write every simulation's raw record to PATH as JSON "
        "(atomic: temp file + rename)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="durably checkpoint every completed simulation to this "
        "JSONL store",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="preload completed runs from --store instead of "
        "re-simulating them",
    )
    parser.add_argument(
        "--isolate",
        action="store_true",
        help="run each simulation in an isolated worker subprocess",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-simulation wall-clock timeout (implies --isolate)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        help="retries (with backoff) for a failed simulation "
        "(implies --isolate; default 1 when isolated)",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a machine-readable campaign manifest (exhibit "
        "status + failed runs) to PATH as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the campaign's simulations across N concurrent worker "
        "subprocesses (implies --isolate; 0 = one per CPU)",
    )
    parser.add_argument(
        "--pool",
        dest="pool",
        action="store_true",
        default=None,
        help="serve parallel units from a supervised pool of persistent "
        "warm workers (default when --jobs > 1)",
    )
    parser.add_argument(
        "--no-pool",
        dest="pool",
        action="store_false",
        help="use a fresh worker subprocess per unit instead of the pool",
    )
    parser.add_argument(
        "--worker-ttl",
        type=int,
        default=0,
        metavar="N",
        help="recycle a pool worker after it has served N units "
        "(0 = never; default 0)",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        default=8,
        metavar="N",
        help="pool-wide budget of fault respawns before the pool "
        "degrades to the serial in-process executor (default 8)",
    )
    parser.add_argument(
        "--chaos-kill-every",
        type=int,
        default=0,
        metavar="N",
        help="chaos drill: SIGKILL the pool worker serving every Nth "
        "unit's first attempt (0 = off); the campaign must still "
        "complete with identical records",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="content-addressed result cache directory: completed units "
        "are stored by config/seed/schema hash and reused across runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the result cache even if --cache-dir "
        "is given",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace_event JSON (load in Perfetto / "
        "chrome://tracing) of the campaign to PATH, plus a compact "
        "JSONL sibling",
    )
    parser.add_argument(
        "--trace-filter",
        metavar="SPEC",
        help="trace filter, e.g. 'level=info,cat=exp+engine,steps=64' "
        "(see docs/architecture.md §8)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry as Prometheus text to PATH "
        "(and JSON to PATH.json)",
    )
    parser.add_argument(
        "--flight",
        action="store_true",
        help="enable the flight recorder: capture the per-access event "
        "stream of every simulation (bounded ring buffer by default); "
        "off by default so the engine hot path stays uninstrumented",
    )
    parser.add_argument(
        "--flight-mode",
        choices=("ring", "full"),
        default="ring",
        help="flight capture mode: 'ring' keeps the last --flight-capacity "
        "events, 'full' keeps everything (default ring)",
    )
    parser.add_argument(
        "--flight-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="ring-buffer capacity in events (default 65536)",
    )
    parser.add_argument(
        "--flight-out",
        metavar="PATH",
        help="write the in-process flight recorder's JSONL event log to "
        "PATH (implies --flight; isolated/pool units capture worker-side "
        "and export through --forensics-out instead)",
    )
    parser.add_argument(
        "--forensics-out",
        metavar="DIR",
        help="write a forensics bundle (JSON + narrative + trace slice) "
        "for every detected race under DIR (implies --flight)",
    )
    parser.add_argument(
        "--event-log",
        metavar="PATH",
        help="with --pool: stream the workers' structured JSONL event "
        "log (unit lifecycle + forensics, with campaign/unit/worker "
        "correlation IDs) to PATH",
    )
    parser.add_argument(
        "--preflight-lint",
        action="store_true",
        help="statically lint the suite before the campaign, annotate "
        "stderr with per-target verdicts, and record them in the "
        "manifest (findings never block the campaign)",
    )
    parser.add_argument(
        "--mc",
        action="store_true",
        help="after the exhibits, upgrade each simulated (app, flags) "
        "configuration's verdict with a bounded DPOR schedule "
        "exploration (repro.mc); verdicts land in the manifest's 'mc' "
        "section.  Expensive: each config re-simulates under up to "
        "--mc-budget controlled schedules",
    )
    parser.add_argument(
        "--mc-budget",
        type=int,
        default=4,
        metavar="N",
        help="schedules per configuration for --mc (default 4: the "
        "fair schedule + unfairness probes)",
    )
    return parser


def _flight_config(args):
    """The campaign's FlightConfig, or None when capture is off."""
    if not (args.flight or args.flight_out or args.forensics_out):
        return None
    from repro.telemetry import FlightConfig

    return FlightConfig(
        mode=args.flight_mode, capacity=args.flight_capacity
    )


def _build_telemetry(args, flight=None):
    """A Telemetry bundle when any telemetry output was requested."""
    if not (args.trace or args.metrics_out or flight is not None):
        return None
    from repro.telemetry import Telemetry, TraceConfig

    if args.trace_filter:
        config = TraceConfig.parse_filter(args.trace_filter)
    else:
        config = TraceConfig()
    if not args.trace:
        config = dataclasses.replace(config, enabled=False)
    return Telemetry(config, flight=flight)


def _build_cache(args):
    if args.no_cache or not args.cache_dir:
        return None
    from repro.experiments.parallel import ResultCache

    return ResultCache(args.cache_dir)


def _build_runner(args, cache=None, telemetry=None, flight=None) -> Runner:
    store = None
    if args.store:
        from repro.experiments.store import RunStore

        store = RunStore(args.store)
    isolate = (
        args.isolate
        or args.timeout is not None
        or args.max_retries is not None
        or args.jobs != 1
    )
    verbose = not args.quiet
    if not isolate:
        return Runner(
            verbose=verbose, store=store, preload=args.resume,
            result_cache=cache, telemetry=telemetry,
            flight=flight, forensics_dir=args.forensics_out,
        )
    from repro.experiments.campaign import CampaignExecutor, CampaignRunner

    executor = CampaignExecutor(
        timeout=args.timeout,
        max_retries=args.max_retries if args.max_retries is not None else 1,
        verbose=verbose,
    )
    runner = CampaignRunner(
        executor, verbose=verbose, store=store, preload=args.resume,
        telemetry=telemetry,
        flight=flight, forensics_dir=args.forensics_out,
    )
    runner.result_cache = cache
    return runner


def _profile_section(runner, telemetry, elapsed_seconds):
    """The manifest's campaign-profiling block (None without telemetry)."""
    if telemetry is None:
        return None
    from repro.telemetry import shard_utilization, source_latencies

    section = {"phases": telemetry.profiler.as_dict()}
    outcome = getattr(runner, "last_parallel_outcome", None)
    if outcome is not None:
        section["shards"] = shard_utilization(
            outcome.outcomes, outcome.elapsed_seconds
        )
        section["unit_sources"] = source_latencies(outcome.outcomes)
    return section


def _build_pool(args, jobs, telemetry=None, flight=None):
    """A (PoolSupervisor, fault_plan) pair, or (None, None) without --pool."""
    if not args.pool:
        return None, None
    from repro.experiments.supervisor import PoolConfig, PoolSupervisor

    fault_plan = None
    if args.chaos_kill_every:
        from repro.experiments.faults import ChaosPlan

        fault_plan = ChaosPlan("pool-kill", every=args.chaos_kill_every)
    config = PoolConfig(
        workers=jobs,
        worker_ttl=args.worker_ttl,
        max_worker_restarts=args.max_worker_restarts,
        unit_timeout=args.timeout,
        max_retries=(
            args.max_retries if args.max_retries is not None else 1
        ),
    )
    supervisor = PoolSupervisor(
        config,
        fault_plan=fault_plan,
        telemetry=telemetry,
        verbose=not args.quiet,
        flight=flight,
        forensics_dir=args.forensics_out,
        event_log_path=args.event_log,
    )
    return supervisor, fault_plan


def _mc_section(runner, budget, quiet, telemetry=None):
    """Campaign verdict upgrade: bounded DPOR exploration per config.

    One exploration per unique (app, enabled-flags) pair the campaign
    simulated — detector and memory-preset variants of the same
    configuration share one schedule space, so they share one verdict.
    """
    from repro.mc import explorer
    from repro.mc.targets import resolve_target

    pairs = sorted({
        (record.app, tuple(sorted(record.races_enabled)))
        for record in runner.records()
    })
    section = {"budget": budget, "targets": {}}
    for app, races in pairs:
        label = f"app:{app}" + ("+" + "+".join(races) if races else "")
        try:
            target = resolve_target(label)
            report = explorer.explore(
                target, budget=budget, stop_on_race=True,
                telemetry=telemetry,
            )
        except ReproError as err:
            section["targets"][label] = {
                "verdict": "error",
                "error": f"{error_code(err)}: {err}",
            }
            continue
        section["targets"][label] = {
            "verdict": report["verdict"],
            "racy": report["racy"],
            "race_types": report["race_types"],
            "schedules_explored": report["schedules_explored"],
            "schedules_pruned": report["schedules_pruned"],
            "prune_ratio": report["prune_ratio"],
        }
        if not quiet:
            print(
                f"[mc] {label}: {report['verdict']}"
                + (f" ({', '.join(report['race_types'])})"
                   if report["race_types"] else ""),
                file=sys.stderr,
            )
    return section


def _write_manifest(
    path, wanted, exhibit_errors, runner, elapsed_seconds, telemetry=None,
    lint_section=None, pool_section=None, forensics_section=None,
    mc_section=None,
) -> None:
    from repro.experiments.store import SCHEMA_VERSION, atomic_write_json

    failed_runs = [f.to_dict() for f in getattr(runner, "failures", [])]
    exhibits = {}
    for name in wanted:
        err = exhibit_errors.get(name)
        if err is None:
            exhibits[name] = {"status": "ok"}
        else:
            exhibits[name] = {
                "status": "failed",
                "code": error_code(err),
                "error": str(err),
            }
    store = runner._store
    payload = {
            "schema": SCHEMA_VERSION,
            "ok": not exhibit_errors and not failed_runs,
            "exhibits": exhibits,
            "failed_runs": failed_runs,
            "counts": {
                "unique_simulations": runner.runs_done(),
                "fresh_runs": runner.fresh_runs,
                "resumed_runs": runner.resumed_runs,
                "cached_runs": runner.cached_runs,
                "failed_runs": len(failed_runs),
                "quarantined_store_lines": (
                    store.quarantined if store is not None else 0
                ),
            },
            "cache": (
                runner.result_cache.stats()
                if runner.result_cache is not None
                else None
            ),
            "profile": _profile_section(runner, telemetry, elapsed_seconds),
            "elapsed_seconds": round(elapsed_seconds, 3),
    }
    if lint_section is not None:
        payload["lint"] = lint_section
    if pool_section is not None:
        payload["pool"] = pool_section
    if forensics_section is not None:
        payload["forensics"] = forensics_section
    if mc_section is not None:
        payload["mc"] = mc_section
    atomic_write_json(path, payload)


def report_main(argv) -> int:
    """``scord-experiments report``: render a telemetry text dashboard."""
    parser = argparse.ArgumentParser(
        prog="scord-experiments report",
        description="Render a text dashboard from telemetry artifacts "
        "(any subset of a Chrome trace, a metrics JSON, and a campaign "
        "manifest).",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="Chrome trace JSON written by --trace",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="metrics JSON written next to --metrics-out (PATH.json)",
    )
    parser.add_argument(
        "--manifest", metavar="PATH",
        help="campaign manifest written by --manifest",
    )
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="counters shown in the top-counters table (default 20)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="live campaign dashboard: re-read the artifacts and redraw "
        "every --interval seconds (Ctrl-C to stop); missing or "
        "mid-write files are tolerated and retried",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period for --live (default 2.0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="with --live: stop after N redraws (0 = until Ctrl-C)",
    )
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.manifest):
        parser.error("nothing to report: give --trace, --metrics, "
                     "or --manifest")
    import json

    from repro.telemetry import render_dashboard

    def load(path, tolerant):
        if not path:
            return None
        try:
            with open(path, "r") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            # Live mode races the writer: absent or half-written
            # artifacts render as "not yet", never as a crash.
            if tolerant:
                return None
            raise

    def render_once(tolerant):
        trace = load(args.trace, tolerant)
        metrics = load(args.metrics, tolerant)
        manifest = load(args.manifest, tolerant)
        if tolerant and trace is None and metrics is None \
                and manifest is None:
            return "[live] waiting for telemetry artifacts..."
        return render_dashboard(
            trace=trace, metrics=metrics, manifest=manifest, top=args.top,
        )

    try:
        if not args.live:
            print(render_once(tolerant=False))
            return 0
        redraws = 0
        while True:
            text = render_once(tolerant=True)
            redraws += 1
            # Clear + home, then the frame — a minimal live TTY update.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            if args.iterations and redraws >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # `report ... | head` closes stdout early; that is not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _lint_targets(names):
    """Resolve CLI target names into (label, thunk) lint jobs."""
    from repro.scolint import lint_app, lint_litmus, lint_micro
    from repro.litmus.catalog import ALL_LITMUS_TESTS, litmus_by_name
    from repro.scor.apps.registry import ALL_APPS, app_by_name
    from repro.scor.micro.registry import ALL_MICROS, micro_by_name

    def micro_jobs():
        return [(f"micro:{m.name}", lambda m=m: lint_micro(m))
                for m in ALL_MICROS]

    def app_jobs():
        jobs = []
        for app_cls in ALL_APPS:
            jobs.append((f"app:{app_cls.name}",
                         lambda c=app_cls: lint_app(c)))
            jobs.extend(
                (f"app:{app_cls.name}+{flag.name}",
                 lambda c=app_cls, f=flag.name: lint_app(c, races=(f,)))
                for flag in app_cls.RACE_FLAGS
            )
        return jobs

    def litmus_jobs():
        return [(f"litmus:{t.name}", lambda t=t: lint_litmus(t))
                for t in ALL_LITMUS_TESTS]

    jobs = []
    for name in names:
        if name == "all":
            jobs += micro_jobs() + app_jobs() + litmus_jobs()
        elif name == "suite":
            jobs += micro_jobs() + app_jobs()
        elif name == "micros":
            jobs += micro_jobs()
        elif name == "apps":
            jobs += app_jobs()
        elif name == "litmus":
            jobs += litmus_jobs()
        else:
            kind, _, rest = name.partition(":")
            if kind == "micro":
                micro = micro_by_name(rest)
                jobs.append((f"micro:{micro.name}",
                             lambda m=micro: lint_micro(m)))
            elif kind == "app":
                app_name, _, flag = rest.partition("+")
                app_cls = app_by_name(app_name)
                races = (flag,) if flag else ()
                label = f"app:{app_cls.name}" + (f"+{flag}" if flag else "")
                jobs.append((label,
                             lambda c=app_cls, r=races: lint_app(c, races=r)))
            elif kind == "litmus":
                test = litmus_by_name(rest)
                jobs.append((f"litmus:{test.name}",
                             lambda t=test: lint_litmus(t)))
            else:
                raise KeyError(
                    f"unknown lint target {name!r}: use all, suite, micros, "
                    f"apps, litmus, micro:<name>, app:<NAME>[+flag], or "
                    f"litmus:<name>"
                )
    return jobs


def lint_main(argv) -> int:
    """``scord-experiments lint``: static scope analysis, no simulation."""
    parser = argparse.ArgumentParser(
        prog="scord-experiments lint",
        description="Statically lint kernels for scope misuse "
        "(see docs/scolint.md for the rule catalog).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["suite"],
        help="'suite' (default: 32 micros + 7 apps, race flags on and "
        "off), 'all' (suite + litmus), 'micros', 'apps', 'litmus', or "
        "individual micro:<name> / app:<NAME>[+flag] / litmus:<name>",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="also write the report to PATH (atomic: temp file + rename)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="list clean targets individually in the text report",
    )
    parser.add_argument(
        "--crossval", action="store_true",
        help="cross-validate against the dynamic detector and print the "
        "per-race-type precision/recall table (simulates the suite)",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="with --crossval: skip the dynamic simulations",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write lint.* counters as Prometheus text to PATH "
        "(and JSON to PATH.json)",
    )
    args = parser.parse_args(argv)

    from repro.scolint import render_json, render_text
    from repro.scolint.model import LintError

    if args.crossval:
        from repro.scolint.crossval import cross_validate

        validation = cross_validate(dynamic=not args.static_only)
        output = validation.render() + "\n"
        if args.json:
            import json

            output = json.dumps(
                validation.as_dict(), indent=2, sort_keys=True
            ) + "\n"
        print(output, end="")
        if args.out:
            from repro.experiments.store import atomic_write_text

            atomic_write_text(args.out, output)
            print(f"[lint report written to {args.out}]", file=sys.stderr)
        errors = [
            (c.target, c.static_error)
            for c in validation.cases if c.static_error
        ]
        for target, error in errors:
            print(f"[lint-error] {target}: {error}", file=sys.stderr)
        return 1 if errors else 0

    try:
        jobs = _lint_targets(args.targets)
    except KeyError as err:
        parser.error(str(err.args[0]))

    results, errors = [], []
    for label, thunk in jobs:
        try:
            results.append(thunk())
        except LintError as err:
            errors.append((label, err))
            print(f"[lint-error] {label}: {err.describe()}",
                  file=sys.stderr, flush=True)
    output = (render_json(results) if args.json
              else render_text(results, verbose=args.verbose))
    print(output, end="")
    if args.out:
        from repro.experiments.store import atomic_write_text

        atomic_write_text(args.out, output)
        print(f"[lint report written to {args.out}]", file=sys.stderr)
    if args.metrics_out:
        from repro.scolint import record_lint_metrics
        from repro.telemetry import Telemetry

        telemetry = Telemetry.disabled()
        record_lint_metrics(telemetry, results)
        telemetry.metrics.counter("lint.errors").inc(len(errors))
        for written in telemetry.export(None, args.metrics_out):
            print(f"[telemetry written to {written}]", file=sys.stderr)
    return 1 if errors else 0


def _preflight_lint(telemetry=None):
    """Campaign pre-flight: static lint verdicts for the suite.

    Returns the manifest's ``lint`` section.  Lint findings never block
    a campaign (racey configurations are the experiments' *subject*) —
    the annotations tell the reader which verdicts to expect.
    """
    from repro.scolint import lint_suite
    from repro.scolint.model import LintError

    try:
        results = lint_suite(litmus=False, telemetry=telemetry)
    except LintError as err:
        print(f"[preflight-lint failed: {err.describe()}]", file=sys.stderr)
        return {"ok": False, "error": err.describe()}
    dirty = [r for r in results if not r.clean]
    print(
        f"[preflight-lint: {len(results)} target(s), "
        f"{len(dirty)} with static findings]",
        file=sys.stderr,
    )
    for result in dirty:
        rules = sorted({f.rule for f in result.findings})
        print(f"[preflight-lint] {result.target}: {', '.join(rules)}",
              file=sys.stderr)
    return {
        "ok": True,
        "targets": len(results),
        "clean": len(results) - len(dirty),
        "verdicts": {
            r.target: sorted({f.rule for f in r.findings})
            for r in dirty
        },
    }


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.forensics.explain import explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "mc":
        from repro.mc.cli import mc_main

        return mc_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "run":
        # Explicit alias for the default exhibit-campaign mode, so every
        # documented subcommand has a name (bare exhibits still work).
        argv = argv[1:] or ["all"]
    parser = _build_parser()
    args = parser.parse_args(argv)

    wanted = list(args.exhibits)
    if "all" in wanted:
        wanted = list(EXHIBITS)
    unknown = [name for name in wanted if name not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibit(s): {', '.join(unknown)}")
    if args.resume and not args.store:
        parser.error("--resume requires --store PATH")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one per CPU)")
    if args.worker_ttl < 0:
        parser.error("--worker-ttl must be >= 0 (0 = never recycle)")
    if args.max_worker_restarts < 0:
        parser.error("--max-worker-restarts must be >= 0")
    if args.chaos_kill_every < 0:
        parser.error("--chaos-kill-every must be >= 0 (0 = off)")
    if args.mc_budget < 1:
        parser.error("--mc-budget must be >= 1")
    if args.chaos_kill_every and args.pool is False:
        parser.error("--chaos-kill-every injects pool faults; remove --no-pool")
    if args.pool is None:
        # Warm pool is the parallel default; chaos only works against it.
        args.pool = args.jobs != 1 or bool(args.chaos_kill_every)

    cache = _build_cache(args)
    try:
        flight = _flight_config(args)
    except ValueError as error:
        parser.error(f"--flight: {error}")
    try:
        telemetry = _build_telemetry(args, flight=flight)
    except ValueError as error:
        parser.error(f"--trace-filter: {error}")
    runner = _build_runner(
        args, cache=cache, telemetry=telemetry, flight=flight
    )
    runners = _exhibit_runners()
    started = time.time()
    campaign_span = None
    if telemetry is not None:
        campaign_span = telemetry.tracer.span(
            "campaign", cat="exp", exhibits=wanted, jobs=args.jobs
        )
        campaign_span.__enter__()
    lint_section = None
    if args.preflight_lint:
        if telemetry is not None:
            with telemetry.tracer.span("preflight-lint", cat="exp"), \
                    telemetry.profiler.phase("exp.preflight_lint"):
                lint_section = _preflight_lint(telemetry=telemetry)
        else:
            lint_section = _preflight_lint()
    plannable = [name for name in wanted if name in RUNNER_EXHIBITS]
    pool_section = None
    if (args.jobs != 1 or args.pool) and plannable:
        from repro.experiments.parallel import prefetch_exhibits

        jobs = args.jobs or (os.cpu_count() or 1)
        supervisor, fault_plan = _build_pool(
            args, jobs, telemetry=telemetry, flight=flight
        )
        try:
            if telemetry is not None:
                with telemetry.tracer.span("parallel-prefetch", cat="exp"), \
                        telemetry.profiler.phase("exp.prefetch"):
                    prefetch_exhibits(
                        runner, runners, plannable, jobs=jobs, cache=cache,
                        verbose=not args.quiet, pool=supervisor,
                    )
            else:
                prefetch_exhibits(
                    runner, runners, plannable, jobs=jobs, cache=cache,
                    verbose=not args.quiet, pool=supervisor,
                )
        finally:
            if supervisor is not None:
                supervisor.close()
                pool_section = supervisor.stats()
                if fault_plan is not None:
                    pool_section["chaos_injected"] = fault_plan.injected
                # Workers forward their forensics units over log frames;
                # fold them into the runner's campaign-level list so the
                # manifest's forensics section sees every unit.
                runner.forensics_units.extend(
                    supervisor.all_forensics_units()
                )
    exhibit_errors = {}
    for name in wanted:
        try:
            if telemetry is not None:
                with telemetry.tracer.span(f"exhibit:{name}", cat="exp"), \
                        telemetry.profiler.phase(f"exp.render.{name}"):
                    text = runners[name](runner)
            else:
                text = runners[name](runner)
            print(text)
        except ReproError as err:
            # One exhibit failing must not abort the campaign: report a
            # single structured line and keep rendering the rest.
            exhibit_errors[name] = err
            print(
                f"[exhibit-failed] {name}: {err.describe()}",
                file=sys.stderr,
                flush=True,
            )
        print()
    if args.dump:
        runner.dump_json(args.dump)
        print(f"[raw records written to {args.dump}]", file=sys.stderr)
    if campaign_span is not None:
        campaign_span.__exit__(None, None, None)
    elapsed = time.time() - started
    mc_section = None
    if args.mc:
        if telemetry is not None:
            with telemetry.tracer.span("mc-upgrade", cat="exp"), \
                    telemetry.profiler.phase("exp.mc"):
                mc_section = _mc_section(
                    runner, args.mc_budget, args.quiet, telemetry
                )
        else:
            mc_section = _mc_section(runner, args.mc_budget, args.quiet)
        elapsed = time.time() - started
    forensics_section = runner.forensics_section()
    if forensics_section is not None and not args.quiet:
        print(
            f"[forensics: {forensics_section['units_captured']} unit(s) "
            f"captured, {forensics_section['bundles']} bundle(s)"
            + (f" under {args.forensics_out}" if args.forensics_out else "")
            + "]",
            file=sys.stderr,
        )
    if args.manifest:
        _write_manifest(
            args.manifest, wanted, exhibit_errors, runner, elapsed,
            telemetry=telemetry, lint_section=lint_section,
            pool_section=pool_section, forensics_section=forensics_section,
            mc_section=mc_section,
        )
        print(f"[manifest written to {args.manifest}]", file=sys.stderr)
    if telemetry is not None:
        for written in telemetry.export(
            args.trace, args.metrics_out, flight_path=args.flight_out
        ):
            print(f"[telemetry written to {written}]", file=sys.stderr)
    failed_runs = getattr(runner, "failures", [])
    cached = f", {runner.cached_runs} cached" if runner.cached_runs else ""
    print(
        f"[{runner.runs_done()} unique simulations "
        f"({runner.fresh_runs} fresh, {runner.resumed_runs} resumed"
        f"{cached}), {elapsed:.0f}s]",
        file=sys.stderr,
    )
    if exhibit_errors or failed_runs:
        print(
            f"[FAILURES: {len(exhibit_errors)} exhibit(s), "
            f"{len(failed_runs)} run(s)]",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
