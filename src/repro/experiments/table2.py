"""Table II — the application inventory (paper input vs scaled input)."""

from __future__ import annotations

from repro.experiments.tables import render_table
from repro.scor.apps.registry import ALL_APPS


def run_table2() -> str:
    rows = []
    for app_cls in ALL_APPS:
        rows.append(
            [
                app_cls.name,
                app_cls.paper_input,
                app_cls.scaled_input,
                app_cls.races_present(),
            ]
        )
    rows.append(["Total", "", "", sum(cls.races_present() for cls in ALL_APPS)])
    return render_table(
        "Table II: ScoR applications",
        ["app", "paper input", "scaled input (this repro)", "config. races"],
        rows,
        note="Paper: 26 unique configurable races across the applications.",
    )
