"""Table I — the microbenchmark census, with per-micro verdicts.

Beyond reproducing the census (2/4 fence, 4/5 atomics, 12/5 lock), the
harness runs all 32 microbenchmarks under full ScoRD and reports whether
each racey test was caught with the expected race type and each non-racey
test stayed silent (the false-positive check).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.experiments.tables import render_table
from repro.scor.micro.base import run_micro
from repro.scor.micro.registry import ALL_MICROS, micros_in_category


@dataclasses.dataclass
class Table1Result:
    census: List[List[object]]
    verdicts: List[List[object]]
    all_ok: bool

    def render(self) -> str:
        census = render_table(
            "Table I: microbenchmark census",
            ["sync type", "racey", "non-racey"],
            self.census,
            note="Paper: fence 2/4, atomics 4/5, lock/unlock 12/5 — 18/14 total.",
        )
        verdicts = render_table(
            "Table I (detail): per-microbenchmark ScoRD verdicts",
            ["microbenchmark", "class", "expected", "detected", "ok"],
            self.verdicts,
        )
        return census + "\n\n" + verdicts


def run_table1() -> Table1Result:
    census = []
    for category in ("fence", "atomics", "lock"):
        micros = micros_in_category(category)
        census.append(
            [
                category,
                sum(1 for m in micros if m.racey),
                sum(1 for m in micros if not m.racey),
            ]
        )
    census.append(
        [
            "total",
            sum(1 for m in ALL_MICROS if m.racey),
            sum(1 for m in ALL_MICROS if not m.racey),
        ]
    )

    verdicts = []
    all_ok = True
    for micro in ALL_MICROS:
        gpu = run_micro(micro)
        detected = sorted(
            {record.race_type.value for record in gpu.races.unique_races}
        )
        expected = sorted(t.value for t in micro.expected_types)
        if micro.racey:
            ok = bool(micro.expected_types & set(
                record.race_type for record in gpu.races.unique_races
            ))
        else:
            ok = gpu.races.unique_count == 0
        all_ok = all_ok and ok
        verdicts.append(
            [
                micro.name,
                "racey" if micro.racey else "non-racey",
                ",".join(expected) or "-",
                ",".join(detected) or "-",
                "yes" if ok else "NO",
            ]
        )
    return Table1Result(census, verdicts, all_ok)
