"""Figure 9 — DRAM accesses normalized to no detection, stacked by class.

For each application, two stacked bars (base w/o caching, ScoRD), each
split into non-metadata (data) and metadata DRAM accesses, normalized to
the DRAM accesses of the no-detection run.  The software metadata cache
touches only ~1/16th of the unique metadata entries, collapsing both the
metadata traffic and the L2 contention it induces on normal data.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner
from repro.experiments.tables import failed_cell, render_table
from repro.scor.apps.registry import ALL_APPS


@dataclasses.dataclass
class Fig9Row:
    app: str
    base_data: float
    base_metadata: float
    scord_data: float
    scord_metadata: float
    #: set when the app's runs failed permanently; values are meaningless
    failed_reason: Optional[str] = None

    @property
    def base_total(self) -> float:
        return self.base_data + self.base_metadata

    @property
    def scord_total(self) -> float:
        return self.scord_data + self.scord_metadata


@dataclasses.dataclass
class Fig9Result:
    rows: List[Fig9Row]

    def render(self) -> str:
        table_rows: List[Tuple] = []
        for row in self.rows:
            if row.failed_reason is not None:
                table_rows.append(
                    (row.app,) + (failed_cell(row.failed_reason),) * 6
                )
                continue
            table_rows.append(
                (
                    row.app,
                    f"{row.base_data:.2f}",
                    f"{row.base_metadata:.2f}",
                    f"{row.base_total:.2f}",
                    f"{row.scord_data:.2f}",
                    f"{row.scord_metadata:.2f}",
                    f"{row.scord_total:.2f}",
                )
            )
        return render_table(
            "Figure 9: DRAM accesses normalized to no detection",
            ["workload", "base data", "base md", "base total",
             "scord data", "scord md", "scord total"],
            table_rows,
            note=(
                "Paper: metadata accesses inflate DRAM traffic substantially "
                "without caching; the software cache cuts unique metadata "
                "entries ~16x, shrinking both components."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import stacked_bars

        labels = []
        data_values = []
        md_values = []
        for row in self.rows:
            if row.failed_reason is not None:
                continue
            labels.append(f"{row.app} base")
            data_values.append(row.base_data)
            md_values.append(row.base_metadata)
            labels.append(f"{row.app} scord")
            data_values.append(row.scord_data)
            md_values.append(row.scord_metadata)
        return stacked_bars(
            "Figure 9 (bars): DRAM accesses by class (normalized)",
            labels,
            [("data", "█", data_values), ("metadata", "▒", md_values)],
        )


def run_fig9(runner: Runner) -> Fig9Result:
    rows = []
    for app_cls in ALL_APPS:
        try:
            none = runner.run(app_cls, detector="none")
            base = runner.run(app_cls, detector="base")
            scord = runner.run(app_cls, detector="scord")
        except ReproError as err:
            rows.append(
                Fig9Row(app_cls.name, 0.0, 0.0, 0.0, 0.0,
                        failed_reason=error_code(err))
            )
            continue
        denom = max(1, none.dram_total)
        rows.append(
            Fig9Row(
                app=app_cls.name,
                base_data=base.dram_data / denom,
                base_metadata=base.dram_metadata / denom,
                scord_data=scord.dram_data / denom,
                scord_metadata=scord.dram_metadata / denom,
            )
        )
    return Fig9Result(rows)
