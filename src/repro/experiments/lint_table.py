"""Exhibit: static-vs-dynamic cross-validation of the scolint rules.

Not a table from the paper — this validates the repository's own static
analyzer (:mod:`repro.scolint`) against the dynamic detector on every
suite configuration, and is the regeneration source for the
"Lint cross-validation" table in EXPERIMENTS.md:

    scord-experiments lint_table

Dynamic application simulations flow through the shared memoizing
runner, so a campaign that also renders Table VI pays for them once.
"""

from __future__ import annotations

from repro.experiments.runner import Runner
from repro.scolint.crossval import CrossValidation, cross_validate


def run_lint_table(runner: Runner) -> CrossValidation:
    progress = print if getattr(runner, "verbose", False) else None
    return cross_validate(dynamic=True, progress=progress, runner=runner)
