"""Pool supervision: the robustness contract over the warm workers.

:mod:`repro.experiments.pool` supplies the mechanism (one warm worker,
one pipe, one unit at a time); this module supplies the policy.  A
:class:`PoolSupervisor` is a drop-in campaign executor (same
``execute(spec) -> RunRecord`` contract as :class:`~repro.experiments.
campaign.CampaignExecutor`) that owns a fleet of workers and enforces:

* **heartbeat liveness** — a busy worker must produce a frame (result
  or heartbeat) every ``heartbeat_timeout`` seconds or it is declared
  hung and killed;
* **crash isolation with recycling** — a worker is killed and replaced
  only *after* a fault (SIGKILL, OOM, unhandled exception, protocol
  desync, hang); healthy workers are reused until their TTL;
* **bounded restarts** — fault respawns draw from a
  ``max_worker_restarts`` budget, so a pathological environment cannot
  spawn-loop forever;
* **bounded retry with backoff** — a faulted unit is retried on a fresh
  worker with exponential backoff, classified by the PR 1 error
  taxonomy (deterministic ``config``/``kernel`` errors are not retried);
* **poison-unit quarantine** — a unit that kills ``poison_threshold``
  workers is failed with ``FAILED(poison-unit)`` instead of eating the
  restart budget;
* **backpressure** — at most one in-flight unit per worker; dispatchers
  block on worker checkout, so the inflight window is bounded by the
  pool size and a stalled pool stalls submission instead of queueing
  unboundedly;
* **graceful degradation** — when workers cannot be sustained (restart
  budget exhausted, spawn failures), the supervisor falls back to the
  serial in-process executor: the campaign finishes slower instead of
  not at all.

The degradation ladder, from cheapest to most conservative::

    warm worker ──fault──▶ recycle worker, retry unit (backoff)
        │                        │
        │                        ├─ unit killed K workers ─▶ FAILED(poison-unit)
        │                        └─ restart budget gone ───▶ degrade pool
        └─ TTL reached ─▶ graceful recycle (no budget cost)

    degraded pool ─▶ every remaining unit runs serially in-process
                     (watchdog-guarded); campaign completes.

Everything is observable: ``pool.*`` telemetry counters, worker
lifecycle spans, and a :meth:`PoolSupervisor.stats` block the CLI embeds
in the campaign manifest.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import threading
import time
import uuid
from typing import Dict, List, Optional

from repro.common.errors import (
    ConfigError,
    PoisonUnit,
    PoolExhausted,
    ProtocolDesync,
    ReproError,
    RunFailedError,
    RunTimeout,
    SlowLorisWorker,
    WorkerCrash,
    WorkerHang,
    error_code,
)
from repro.experiments.campaign import (
    _NO_RETRY_CODES,
    InProcessExecutor,
    RunFailure,
    RunSpec,
)
from repro.experiments.pool import (
    DEFAULT_HEARTBEAT_SECONDS,
    WorkerHandle,
)
from repro.experiments.runner import RunRecord

#: faults that condemn the worker (its stream or process is gone/
#: untrustworthy); anything else in the taxonomy means the worker is
#: healthy and only the unit failed
WORKER_FATAL = (
    WorkerHang, WorkerCrash, ProtocolDesync, SlowLorisWorker, RunTimeout,
)


@dataclasses.dataclass
class PoolConfig:
    """Sizing and robustness policy for one supervised pool."""

    #: worker processes kept warm (the inflight window)
    workers: int = 2
    #: units one worker serves before a graceful recycle (0 = unlimited)
    worker_ttl: int = 0
    #: fault respawns allowed pool-wide before degrading to in-process
    max_worker_restarts: int = 8
    #: per-unit wall-clock bound (None = unbounded)
    unit_timeout: Optional[float] = None
    #: max frame silence from a busy worker before it is declared hung
    heartbeat_timeout: float = 10.0
    #: heartbeat cadence the workers are asked to keep
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS
    #: retries per unit after a retryable failure
    max_retries: int = 1
    #: base of the exponential retry backoff
    backoff_seconds: float = 0.25
    #: workers one unit may kill before it is quarantined
    poison_threshold: int = 2
    #: seconds a booting worker gets to pre-import and say ready
    spawn_timeout: float = 60.0

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError("pool needs at least 1 worker")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.poison_threshold < 1:
            raise ConfigError("poison_threshold must be >= 1")
        if self.max_worker_restarts < 0:
            raise ConfigError("max_worker_restarts must be >= 0")


class PoolSupervisor:
    """Supervised persistent worker pool; a drop-in campaign executor.

    Thread-safe: the parallel campaign's dispatcher threads call
    :meth:`execute` concurrently; each call checks a worker out of the
    idle queue (blocking — that is the backpressure), drives it, and
    checks it back in (or recycles it after a fault).
    """

    def __init__(
        self,
        config: Optional[PoolConfig] = None,
        fault_plan=None,
        telemetry=None,
        verbose: bool = False,
        progress_stream=None,
        flight=None,
        forensics_dir=None,
        event_log_path=None,
    ):
        self.config = config or PoolConfig()
        self.fault_plan = fault_plan
        self.telemetry = telemetry
        self.verbose = verbose
        import sys

        self.progress_stream = progress_stream or sys.stderr
        #: flight/forensics capture forwarded to every worker unit
        self.flight = flight
        self.forensics_dir = forensics_dir
        #: correlation ID stamped on every forwarded log event
        self.campaign_id = uuid.uuid4().hex[:12]
        self._fallback = InProcessExecutor(
            timeout=self.config.unit_timeout,
            flight=flight,
            forensics_dir=forensics_dir,
        )
        # -- structured event log (worker "log" frames) -----------------
        self.forensics_units: List[dict] = []
        self.log_events: List[dict] = []
        self._log_lock = threading.Lock()
        self._event_log_path = event_log_path
        self._event_log_handle = None
        if event_log_path:
            self._event_log_handle = open(event_log_path, "w")
        #: idle queue: WorkerHandle (warm) or None (a spawn slot)
        self._idle: "queue.Queue" = queue.Queue()
        for _ in range(self.config.workers):
            self._idle.put(None)
        self._state = threading.Lock()
        self._next_worker_id = 0
        self._degraded = False
        self._closed = False
        # -- counters (all guarded by _state) --------------------------
        self.spawned = 0
        self.restarts = 0  # fault respawns consumed from the budget
        self.ttl_recycles = 0
        self.heartbeats = 0
        self.units_ok = 0
        self.units_retried = 0
        self.units_degraded = 0
        self.poisoned_specs: Dict[str, str] = {}  # describe() -> category
        self.lost_workers: Dict[str, int] = {}  # error code -> count
        self._poison_counts: Dict[object, int] = {}
        self._live: Dict[int, WorkerHandle] = {}
        #: per-worker lifetime accounting, surviving recycles (satellite
        #: gauges: pool.worker.units_served / pool.worker.lifetime_seconds)
        self._worker_stats: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def degraded(self) -> bool:
        return self._degraded

    def close(self) -> None:
        """Shut every live worker down gracefully."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            live = list(self._live.values())
            self._live.clear()
        for worker in live:
            self._update_worker_stats(worker)
            worker.shutdown()
            self._mark_worker_dead(worker.worker_id)
        with self._log_lock:
            handle, self._event_log_handle = self._event_log_handle, None
        if handle is not None:
            handle.close()

    # ------------------------------------------------------------------
    # The executor contract
    # ------------------------------------------------------------------
    def execute(self, spec: RunSpec) -> RunRecord:
        """Run *spec* to completion; raises :class:`RunFailedError`."""
        if self._closed:
            raise PoolExhausted(
                "the pool supervisor is closed; no workers can be "
                "checked out or spawned"
            )
        attempts = self.config.max_retries + 1
        last_category, last_message = "unknown", ""
        for attempt in range(1, attempts + 1):
            poisoned = self.poisoned_specs.get(spec.describe())
            if poisoned is not None:
                raise self._poison_failure(spec, attempt, poisoned)
            fault = None
            if self.fault_plan is not None:
                fault = self.fault_plan.action_for(
                    spec.app, spec.detector, spec.memory, attempt
                )
            worker = self._checkout()
            if worker is None:
                # Degraded: the serial in-process floor of the ladder.
                with self._state:
                    self.units_degraded += 1
                self._count("pool.units.degraded")
                return self._fallback.execute(spec)
            hb_before = worker.heartbeats_seen
            try:
                record = worker.run_unit(
                    spec,
                    deadline=self.config.unit_timeout,
                    fault=fault,
                    heartbeat_timeout=self.config.heartbeat_timeout,
                    heartbeat_seconds=self.config.heartbeat_seconds,
                    flight=(
                        self.flight.to_dict()
                        if self.flight is not None else None
                    ),
                    forensics_dir=self.forensics_dir,
                    campaign=self.campaign_id,
                )
            except WORKER_FATAL as err:
                self._add_heartbeats(worker.heartbeats_seen - hb_before)
                last_category, last_message = error_code(err), str(err)
                self._recycle_after_fault(worker, last_category)
                self._note(
                    f"worker {worker.worker_id} lost on "
                    f"{spec.describe()} (attempt {attempt}/{attempts}): "
                    f"{last_category}: {last_message}"
                )
                poison_category = self._note_poison(spec, last_category)
                if poison_category is not None:
                    raise self._poison_failure(
                        spec, attempt, poison_category
                    )
                if attempt < attempts:
                    self._count("pool.units.retried")
                    with self._state:
                        self.units_retried += 1
                    time.sleep(
                        self.config.backoff_seconds * (2 ** (attempt - 1))
                    )
                continue
            except ReproError as err:
                # The worker reported a structured failure and is still
                # healthy — the unit failed, not the worker.
                self._add_heartbeats(worker.heartbeats_seen - hb_before)
                self._checkin(worker)
                last_category, last_message = err.code, str(err)
                if last_category in _NO_RETRY_CODES:
                    break
                if attempt < attempts:
                    self._count("pool.units.retried")
                    with self._state:
                        self.units_retried += 1
                    time.sleep(
                        self.config.backoff_seconds * (2 ** (attempt - 1))
                    )
                continue
            self._add_heartbeats(worker.heartbeats_seen - hb_before)
            self._checkin(worker)
            with self._state:
                self.units_ok += 1
            self._count("pool.units.ok")
            return record
        failure = RunFailure(spec, last_category, last_message, attempt)
        raise RunFailedError(
            f"{spec.describe()} failed after {attempt} attempt(s): "
            f"{last_category}: {last_message}",
            failure=failure,
        )

    # ------------------------------------------------------------------
    # Worker checkout / checkin / recycling
    # ------------------------------------------------------------------
    def _checkout(self) -> Optional[WorkerHandle]:
        """A warm worker, a freshly spawned one, or None when degraded."""
        while True:
            if self._degraded:
                return None
            try:
                token = self._idle.get(timeout=0.5)
            except queue.Empty:
                continue  # re-check the degraded flag, then keep waiting
            if self._degraded:
                self._idle.put(token)
                return None
            if isinstance(token, WorkerHandle):
                if token.alive:
                    return token
                # Died while idle (OOM-killed, external SIGKILL):
                # treat exactly like a mid-unit fault.
                self._recycle_after_fault(token, "worker-crash")
                continue
            worker = self._spawn()
            if worker is not None:
                return worker
            # Spawn failed and consumed budget; loop re-checks state.

    def _spawn(self) -> Optional[WorkerHandle]:
        with self._state:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        worker = WorkerHandle(
            worker_id, spawn_timeout=self.config.spawn_timeout
        )
        worker.on_log = self._on_worker_log
        try:
            if self.telemetry is not None:
                with self.telemetry.tracer.span(
                    f"pool.spawn:worker-{worker_id}", cat="pool"
                ):
                    worker.spawn()
            else:
                worker.spawn()
        except (ReproError, OSError) as err:
            self._note(f"worker {worker_id} failed to spawn: {err}")
            self._consume_restart("spawn-failed")
            self._idle.put(None)
            return None
        with self._state:
            self.spawned += 1
            self._live[worker.worker_id] = worker
            self._worker_stats[worker.worker_id] = {
                "pid": worker.pid,
                "units_served": 0,
                "heartbeats_seen": 0,
                "lifetime_seconds": 0.0,
                "alive": True,
            }
        self._count("pool.workers.spawned")
        self._note(
            f"worker {worker_id} ready (pid {worker.pid}, "
            f"{self.spawned} spawned so far)"
        )
        return worker

    def _checkin(self, worker: WorkerHandle) -> None:
        """Return a healthy worker to the idle queue (or TTL-recycle)."""
        self._update_worker_stats(worker)
        ttl = self.config.worker_ttl
        if ttl and worker.units_served >= ttl:
            with self._state:
                self.ttl_recycles += 1
                self._live.pop(worker.worker_id, None)
            self._count("pool.workers.recycled_ttl")
            worker.shutdown()
            self._mark_worker_dead(worker.worker_id)
            self._note(
                f"worker {worker.worker_id} recycled after "
                f"{worker.units_served} unit(s) (TTL {ttl})"
            )
            self._idle.put(None)  # a fresh slot, spawned on demand
            return
        self._idle.put(worker)

    def _recycle_after_fault(
        self, worker: WorkerHandle, category: str
    ) -> None:
        """Kill a faulted worker and account for its replacement."""
        self._update_worker_stats(worker)
        worker.kill()
        self._mark_worker_dead(worker.worker_id)
        with self._state:
            self._live.pop(worker.worker_id, None)
            self.lost_workers[category] = (
                self.lost_workers.get(category, 0) + 1
            )
        self._count("pool.workers.lost", code=category)
        self._consume_restart(category)
        self._idle.put(None)

    def _consume_restart(self, reason: str) -> None:
        degrade = False
        with self._state:
            self.restarts += 1
            if self.restarts > self.config.max_worker_restarts:
                degrade = not self._degraded
                self._degraded = True
        self._count("pool.restarts")
        if degrade:
            self._count("pool.degraded")
            self._note(
                f"restart budget exhausted "
                f"({self.restarts - 1}/{self.config.max_worker_restarts} "
                f"used, then {reason}): degrading to the serial "
                "in-process executor"
            )
            # Wake every dispatcher blocked on checkout.
            for _ in range(self.config.workers):
                self._idle.put(None)

    # ------------------------------------------------------------------
    # Poison-unit quarantine
    # ------------------------------------------------------------------
    def _note_poison(self, spec: RunSpec, category: str) -> Optional[str]:
        """Count a worker-fatal fault against *spec*; quarantine at K."""
        key = spec.key()
        with self._state:
            self._poison_counts[key] = self._poison_counts.get(key, 0) + 1
            if self._poison_counts[key] >= self.config.poison_threshold:
                self.poisoned_specs[spec.describe()] = category
                return category
        return None

    def _poison_failure(
        self, spec: RunSpec, attempt: int, category: str
    ) -> RunFailedError:
        with self._state:
            kills = self._poison_counts.get(spec.key(), 0)
        self._count("pool.units.poisoned")
        err = PoisonUnit(
            f"{spec.describe()} killed {kills} worker(s) "
            f"(last fault: {category}); quarantined to protect the pool"
        )
        failure = RunFailure(spec, err.code, str(err), attempt)
        return RunFailedError(str(err), failure=failure)

    # ------------------------------------------------------------------
    # Accounting and observability
    # ------------------------------------------------------------------
    def _add_heartbeats(self, count: int) -> None:
        if count <= 0:
            return
        with self._state:
            self.heartbeats += count
        self._count("pool.heartbeats", amount=count)

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc(amount)

    def _update_worker_stats(self, worker: WorkerHandle) -> None:
        """Refresh the lifetime gauges for one worker (satellite export)."""
        units = worker.units_served
        beats = worker.heartbeats_seen
        lifetime = round(worker.lifetime_seconds, 3)
        with self._state:
            entry = self._worker_stats.get(worker.worker_id)
            if entry is None:
                return
            entry["units_served"] = units
            entry["heartbeats_seen"] = beats
            entry["lifetime_seconds"] = lifetime
        if self.telemetry is not None:
            label = str(worker.worker_id)
            self.telemetry.metrics.gauge(
                "pool.worker.units_served", worker=label
            ).set(float(units))
            self.telemetry.metrics.gauge(
                "pool.worker.lifetime_seconds", worker=label
            ).set(lifetime)

    def _mark_worker_dead(self, worker_id: int) -> None:
        with self._state:
            entry = self._worker_stats.get(worker_id)
            if entry is not None:
                entry["alive"] = False

    def all_forensics_units(self) -> List[dict]:
        """Worker-forwarded units plus any captured while degraded."""
        with self._log_lock:
            units = list(self.forensics_units)
        return units + list(self._fallback.forensics_units)

    def _on_worker_log(self, events) -> None:
        """A worker forwarded structured log events over a ``log`` frame.

        Events already carry worker-side correlation IDs (campaign,
        unit, worker pid, request id); the parent's job is durability:
        append to the in-memory log, stream to the JSONL event log, and
        lift ``forensics_unit`` payloads into the campaign-level list.
        """
        with self._log_lock:
            for event in events:
                if not isinstance(event, dict):
                    continue
                self.log_events.append(event)
                if self._event_log_handle is not None:
                    self._event_log_handle.write(
                        json.dumps(event, sort_keys=True) + "\n"
                    )
                unit = event.get("forensics_unit")
                if isinstance(unit, dict):
                    self.forensics_units.append(unit)
            if self._event_log_handle is not None:
                self._event_log_handle.flush()
        self._count("pool.log_events", amount=len(events))

    def _note(self, message: str) -> None:
        if self.verbose:
            print(f"  [pool] {message}", file=self.progress_stream,
                  flush=True)

    def stats(self) -> dict:
        """The manifest's ``pool`` block: everything that happened."""
        with self._log_lock:
            log_count = len(self.log_events)
            forensics_count = len(self.forensics_units)
        with self._state:
            return {
                "campaign": self.campaign_id,
                "workers": self.config.workers,
                "worker_ttl": self.config.worker_ttl,
                "max_worker_restarts": self.config.max_worker_restarts,
                "spawned": self.spawned,
                "restarts": self.restarts,
                "ttl_recycles": self.ttl_recycles,
                "heartbeats": self.heartbeats,
                "units_ok": self.units_ok,
                "units_retried": self.units_retried,
                "units_degraded": self.units_degraded,
                "lost_workers": dict(self.lost_workers),
                "poisoned_units": dict(self.poisoned_specs),
                "degraded": self._degraded,
                "log_events": log_count,
                "forensics_units": forensics_count,
                "event_log": self._event_log_path,
                "per_worker": {
                    str(worker_id): dict(entry)
                    for worker_id, entry in sorted(
                        self._worker_stats.items()
                    )
                },
            }
