"""Figure 10 — breakdown of ScoRD's performance overhead.

Three sources (§V): LHD — stalling on L1 hits while the detector's buffer
is full; NOC — extra packet payload and detector packets congesting the
interconnect; MD — metadata accesses and writebacks.  As in the paper,
each source's timing model is disabled in a separate run and the
performance uplift estimates its *relative* contribution.

Paper averages: LHD 16.5%, NOC 36.2%, MD 47.3%; well-coalesced apps
(RED, R110) are metadata-dominated, graph apps are network-dominated, and
UTS shows no LHD at all because its volatile accesses bypass the L1.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner
from repro.experiments.tables import failed_cell, render_table
from repro.scor.apps.registry import ALL_APPS

_SOURCES = ("lhd", "noc", "md")


@dataclasses.dataclass
class Fig10Row:
    app: str
    lhd: float  # relative contribution, fraction of total overhead
    noc: float
    md: float
    #: set when the app's runs failed permanently; values are meaningless
    failed_reason: Optional[str] = None


@dataclasses.dataclass
class Fig10Result:
    rows: List[Fig10Row]

    def averages(self) -> Fig10Row:
        ok = [r for r in self.rows if r.failed_reason is None]
        if not ok:
            return Fig10Row("AVG", 0.0, 0.0, 0.0)
        n = len(ok)
        return Fig10Row(
            "AVG",
            sum(r.lhd for r in ok) / n,
            sum(r.noc for r in ok) / n,
            sum(r.md for r in ok) / n,
        )

    def render(self) -> str:
        rows = [
            (r.app,) + (failed_cell(r.failed_reason),) * 3
            if r.failed_reason is not None
            else (r.app, f"{100 * r.lhd:.1f}%", f"{100 * r.noc:.1f}%",
                  f"{100 * r.md:.1f}%")
            for r in [*self.rows, self.averages()]
        ]
        return render_table(
            "Figure 10: relative contribution of overhead sources",
            ["workload", "LHD", "NOC", "MD"],
            rows,
            note=(
                "Paper averages: LHD 16.5%, NOC 36.2%, MD 47.3%; UTS has no "
                "LHD (volatile accesses bypass the L1)."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import stacked_bars

        plotted = [row for row in self.rows if row.failed_reason is None]
        labels = [row.app for row in plotted]
        return stacked_bars(
            "Figure 10 (bars): overhead source shares",
            labels,
            [
                ("LHD", "░", [row.lhd for row in plotted]),
                ("NOC", "▒", [row.noc for row in plotted]),
                ("MD", "█", [row.md for row in plotted]),
            ],
        )


def run_fig10(runner: Runner) -> Fig10Result:
    rows = []
    for app_cls in ALL_APPS:
        try:
            full = runner.run(app_cls, detector="scord").cycles
            uplifts = {}
            for source in _SOURCES:
                without = runner.run(
                    app_cls, detector=f"scord-no{source}"
                ).cycles
                uplifts[source] = max(0, full - without)
        except ReproError as err:
            rows.append(
                Fig10Row(app_cls.name, 0.0, 0.0, 0.0,
                         failed_reason=error_code(err))
            )
            continue
        total = sum(uplifts.values())
        if total == 0:
            rows.append(Fig10Row(app_cls.name, 0.0, 0.0, 0.0))
            continue
        rows.append(
            Fig10Row(
                app_cls.name,
                uplifts["lhd"] / total,
                uplifts["noc"] / total,
                uplifts["md"] / total,
            )
        )
    return Fig10Result(rows)
