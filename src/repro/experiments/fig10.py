"""Figure 10 — breakdown of ScoRD's performance overhead.

Three sources (§V): LHD — stalling on L1 hits while the detector's buffer
is full; NOC — extra packet payload and detector packets congesting the
interconnect; MD — metadata accesses and writebacks.  As in the paper,
each source's timing model is disabled in a separate run and the
performance uplift estimates its *relative* contribution.

Paper averages: LHD 16.5%, NOC 36.2%, MD 47.3%; well-coalesced apps
(RED, R110) are metadata-dominated, graph apps are network-dominated, and
UTS shows no LHD at all because its volatile accesses bypass the L1.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.experiments.runner import Runner
from repro.experiments.tables import render_table
from repro.scor.apps.registry import ALL_APPS

_SOURCES = ("lhd", "noc", "md")


@dataclasses.dataclass
class Fig10Row:
    app: str
    lhd: float  # relative contribution, fraction of total overhead
    noc: float
    md: float


@dataclasses.dataclass
class Fig10Result:
    rows: List[Fig10Row]

    def averages(self) -> Fig10Row:
        n = len(self.rows)
        return Fig10Row(
            "AVG",
            sum(r.lhd for r in self.rows) / n,
            sum(r.noc for r in self.rows) / n,
            sum(r.md for r in self.rows) / n,
        )

    def render(self) -> str:
        rows = [
            (r.app, f"{100 * r.lhd:.1f}%", f"{100 * r.noc:.1f}%", f"{100 * r.md:.1f}%")
            for r in [*self.rows, self.averages()]
        ]
        return render_table(
            "Figure 10: relative contribution of overhead sources",
            ["workload", "LHD", "NOC", "MD"],
            rows,
            note=(
                "Paper averages: LHD 16.5%, NOC 36.2%, MD 47.3%; UTS has no "
                "LHD (volatile accesses bypass the L1)."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import stacked_bars

        labels = [row.app for row in self.rows]
        return stacked_bars(
            "Figure 10 (bars): overhead source shares",
            labels,
            [
                ("LHD", "░", [row.lhd for row in self.rows]),
                ("NOC", "▒", [row.noc for row in self.rows]),
                ("MD", "█", [row.md for row in self.rows]),
            ],
        )


def run_fig10(runner: Runner) -> Fig10Result:
    rows = []
    for app_cls in ALL_APPS:
        full = runner.run(app_cls, detector="scord").cycles
        uplifts = {}
        for source in _SOURCES:
            without = runner.run(app_cls, detector=f"scord-no{source}").cycles
            uplifts[source] = max(0, full - without)
        total = sum(uplifts.values())
        if total == 0:
            rows.append(Fig10Row(app_cls.name, 0.0, 0.0, 0.0))
            continue
        rows.append(
            Fig10Row(
                app_cls.name,
                uplifts["lhd"] / total,
                uplifts["noc"] / total,
                uplifts["md"] / total,
            )
        )
    return Fig10Result(rows)
