"""Experiment harnesses regenerating every table and figure of the paper.

One module per exhibit:

========  ==================================================== ==========
module    reproduces                                            paper ref
========  ==================================================== ==========
table1    microbenchmark census and per-micro verdicts          Table I
table2    application inventory                                  Table II
table6    races caught (base w/o caching vs ScoRD)               Table VI
table7    false positives vs metadata tracking granularity       Table VII
table8    detector capability comparison                         Table VIII
fig8      execution cycles normalized to no detection            Fig. 8
fig9      DRAM accesses (data vs metadata), normalized           Fig. 9
fig10     overhead breakdown: LHD / NOC / MD                     Fig. 10
fig11     sensitivity to L2 capacity + DRAM bandwidth            Fig. 11
========  ==================================================== ==========

All modules share a memoizing :class:`~repro.experiments.runner.Runner`, so
e.g. Fig. 9 reuses the Fig. 8 simulations.  ``scord-experiments`` (see
``repro.experiments.cli``) runs any subset from the command line.
"""

from repro.experiments.runner import RunRecord, Runner

__all__ = ["RunRecord", "Runner"]
