"""Parallel sharded campaigns and the content-addressed result cache.

PR 1 made each simulation an isolated worker subprocess; this module
exploits that: since every work unit already runs in its own process,
inter-simulation parallelism only needs the *parent* to drive several
workers at once.  :class:`ParallelCampaignExecutor` shards a campaign's
(app, detector, memory, races, seed) units across a pool of worker
subprocesses fed work-stealing style from one shared queue — an idle
shard steals the next unit the moment it finishes, so one slow unit
(UTS) never serializes a shard's backlog behind it.

Two properties are load-bearing:

* **Deterministic merge** — results are returned in unit *submission*
  order regardless of completion order, and failures occupy their unit's
  slot.  A campaign at ``--jobs 4`` is record-for-record identical to
  ``--jobs 1`` (wall-clock aside); tests assert this.
* **Content addressing** — a :class:`ResultCache` keyed by
  :func:`repro.experiments.store.unit_digest` (a stable hash of the
  resolved GPU config, resolved detector config, kernel identity, seed,
  and schema version) lets re-runs and overlapping exhibits (Fig. 8 and
  Table VI share every baseline run) hit disk instead of re-simulating.
  Keys exclude anything volatile — wall-clock, timestamps, host — so a
  cache written on one machine hits on another.

:func:`prefetch_exhibits` bridges the exhibit layer: exhibits request
runs one at a time, so it first *plans* the campaign by dry-running each
exhibit against a :class:`PlanningRunner` (which records the request
stream and answers with synthetic records), then executes the collected
units in parallel and injects the results into the real runner's cache.
Planning is best-effort: a unit the planner misses is simply simulated
serially by the exhibit itself, so parallelism is an optimization, never
a correctness dependency.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, RunFailedError, StoreError
from repro.experiments.campaign import (
    CampaignExecutor,
    CampaignRunner,
    RunFailure,
    RunSpec,
)
from repro.experiments.runner import RunRecord, Runner
from repro.experiments.store import (
    SCHEMA_VERSION,
    atomic_write_json,
    record_from_dict,
    record_to_dict,
    unit_digest,
)

CACHE_SCHEMA = SCHEMA_VERSION


# ----------------------------------------------------------------------
# The content-addressed result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Directory of completed run records, one file per unit digest.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` (two-level fan-out so
    large sweeps do not produce million-entry directories).  Each file
    carries the schema version, the digest it was stored under, and the
    full record; reads re-derive the digest from the request and treat
    any mismatch, parse error, or schema drift as a miss — a corrupt
    cache can cost time, never correctness.  Writes are atomic (temp
    file + rename), so concurrent shards may race to fill the same entry
    and the loser simply overwrites it with identical bytes.

    Invalidation is by construction: the digest hashes the record schema
    version and the resolved configurations, so a schema bump or any
    config change produces fresh digests and the stale entries are
    never consulted again (``prune()`` removes them).
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    @staticmethod
    def digest_of(app, detector, memory, races, seed=1) -> str:
        return unit_digest(app, detector, memory, races, seed)

    # ------------------------------------------------------------------
    def get(
        self, app: str, detector: str, memory: str,
        races: Iterable[str], seed: int = 1,
    ) -> Optional[RunRecord]:
        """Return the cached record for a unit, or ``None`` on a miss."""
        digest = self.digest_of(app, detector, memory, tuple(races), seed)
        path = self.path_for(digest)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"schema {payload.get('schema')!r}")
            if payload.get("digest") != digest:
                raise ValueError("digest mismatch (renamed entry?)")
            record = record_from_dict(payload["record"])
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception:
            # A torn, stale, or hand-edited entry is a miss, not a crash.
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return record

    def get_spec(self, spec: RunSpec) -> Optional[RunRecord]:
        return self.get(
            spec.app, spec.detector, spec.memory, spec.races, spec.seed
        )

    # ------------------------------------------------------------------
    def put(self, record: RunRecord) -> None:
        """Store one completed record under its unit digest."""
        digest = self.digest_of(
            record.app, record.detector, record.memory,
            record.races_enabled, record.seed,
        )
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(
            path,
            {
                "schema": CACHE_SCHEMA,
                "digest": digest,
                "record": record_to_dict(record),
            },
        )
        with self._lock:
            self.writes += 1

    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Delete entries no current-schema request can ever hit."""
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    with open(path, "r") as handle:
                        payload = json.load(handle)
                    stale = payload.get("schema") != CACHE_SCHEMA
                except Exception:
                    stale = True
                if stale:
                    try:
                        os.unlink(path)
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "corrupt": self.corrupt,
            }


# ----------------------------------------------------------------------
# Work units and outcomes
# ----------------------------------------------------------------------
@dataclasses.dataclass
class UnitOutcome:
    """What happened to one work unit."""

    spec: RunSpec
    record: Optional[RunRecord] = None
    failure: Optional[RunFailure] = None
    source: str = "run"  # "run" | "cache"
    shard: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclasses.dataclass
class CampaignOutcome:
    """Deterministically merged results of one parallel campaign."""

    outcomes: List[UnitOutcome]
    jobs: int
    elapsed_seconds: float

    @property
    def records(self) -> List[RunRecord]:
        return [o.record for o in self.outcomes if o.record is not None]

    @property
    def failures(self) -> List[RunFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "cache")

    @property
    def executed(self) -> int:
        return sum(
            1 for o in self.outcomes if o.source == "run" and o.ok
        )

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "units": len(self.outcomes),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": len(self.failures),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def dedupe_specs(specs: Sequence[RunSpec]) -> List[RunSpec]:
    """Drop duplicate units, preserving first-seen order."""
    seen = set()
    unique: List[RunSpec] = []
    for spec in specs:
        key = spec.key()
        if key in seen:
            continue
        seen.add(key)
        unique.append(spec)
    return unique


# ----------------------------------------------------------------------
# The parallel executor
# ----------------------------------------------------------------------
class ParallelCampaignExecutor:
    """Shards work units across concurrent isolated workers.

    Each shard is a parent-side dispatcher thread that steals the next
    unit from a shared queue and drives one worker subprocess at a time
    through *executor* (any object with ``execute(spec) -> RunRecord``
    raising :class:`RunFailedError`; normally PR 1's
    :class:`~repro.experiments.campaign.CampaignExecutor`, which brings
    subprocess isolation, watchdogs, timeout, and retry/backoff per
    unit).  The GIL is irrelevant: the simulations burn CPU in separate
    worker *processes* while the dispatcher threads sleep in ``wait()``.

    The optional *cache* is consulted before executing and filled after;
    the optional *store* is appended to by the parent (serialized by a
    lock, so concurrent shards can never interleave torn JSONL lines)
    the moment each unit completes — durability does not wait for the
    merge.
    """

    def __init__(
        self,
        executor,
        jobs: int = 0,
        cache: Optional[ResultCache] = None,
        store=None,
        verbose: bool = False,
        progress_stream=None,
        telemetry=None,
    ):
        if jobs < 0:
            raise ConfigError("jobs must be >= 0 (0 = one per CPU)")
        self.executor = executor
        self.jobs = jobs or (os.cpu_count() or 1)
        self.cache = cache
        self.store = store
        self.verbose = verbose
        self.progress_stream = progress_stream or sys.stderr
        #: optional :class:`repro.telemetry.Telemetry` — unit spans land
        #: on each dispatcher thread's own trace track
        self.telemetry = telemetry
        self._store_lock = threading.Lock()
        self._progress_lock = threading.Lock()
        self._done = 0
        self._total = 0

    # ------------------------------------------------------------------
    def run_units(self, specs: Sequence[RunSpec]) -> CampaignOutcome:
        """Run every unit; return outcomes in submission order."""
        unique = dedupe_specs(specs)
        started = time.time()
        slots: List[Optional[UnitOutcome]] = [None] * len(unique)
        queue = deque(enumerate(unique))
        queue_lock = threading.Lock()
        self._done = 0
        self._total = len(unique)
        jobs = max(1, min(self.jobs, len(unique) or 1))

        def shard(shard_id: int) -> None:
            while True:
                with queue_lock:
                    if not queue:
                        return
                    index, spec = queue.popleft()
                slots[index] = self._run_one(shard_id, spec)

        threads = [
            threading.Thread(
                target=shard, args=(i,), name=f"campaign-shard-{i}",
                daemon=True,
            )
            for i in range(jobs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every slot is filled: the queue drained and each popped unit
        # wrote exactly its own index.
        outcomes = [slot for slot in slots if slot is not None]
        return CampaignOutcome(
            outcomes=outcomes,
            jobs=jobs,
            elapsed_seconds=time.time() - started,
        )

    # ------------------------------------------------------------------
    def _run_one(self, shard_id: int, spec: RunSpec) -> UnitOutcome:
        if self.telemetry is None:
            return self._run_one_inner(shard_id, spec)
        with self.telemetry.tracer.span(
            f"unit:{spec.describe()}", cat="exp", shard=shard_id,
        ):
            outcome = self._run_one_inner(shard_id, spec)
        metrics = self.telemetry.metrics
        source = "failed" if outcome.failure is not None else outcome.source
        metrics.counter("exp.shard.units", shard=str(shard_id)).inc()
        metrics.counter(
            "exp.shard.busy_seconds", shard=str(shard_id)
        ).inc(outcome.seconds)
        metrics.histogram(
            "exp.unit.seconds", source=source
        ).observe(outcome.seconds)
        return outcome

    def _run_one_inner(self, shard_id: int, spec: RunSpec) -> UnitOutcome:
        started = time.time()
        if self.cache is not None:
            record = self.cache.get_spec(spec)
            if record is not None:
                outcome = UnitOutcome(
                    spec, record=record, source="cache", shard=shard_id,
                    seconds=time.time() - started,
                )
                self._progress(outcome)
                return outcome
        try:
            record = self.executor.execute(spec)
        except RunFailedError as err:
            failure = err.failure or RunFailure(
                spec, "unknown", str(err), attempts=1
            )
            outcome = UnitOutcome(
                spec, failure=failure, shard=shard_id,
                seconds=time.time() - started,
            )
            self._progress(outcome)
            return outcome
        if self.cache is not None:
            try:
                self.cache.put(record)
            except (StoreError, OSError):
                pass  # a read-only cache must not fail the unit
        if self.store is not None:
            with self._store_lock:
                self.store.append(record)
        outcome = UnitOutcome(
            spec, record=record, shard=shard_id,
            seconds=time.time() - started,
        )
        self._progress(outcome)
        return outcome

    def _progress(self, outcome: UnitOutcome) -> None:
        with self._progress_lock:
            self._done += 1
            done, total = self._done, self._total
        if not self.verbose:
            return
        if outcome.failure is not None:
            status = f"FAILED({outcome.failure.category})"
        elif outcome.source == "cache":
            status = "cache"
        else:
            status = "ok"
        print(
            f"  [shard {outcome.shard + 1}] {done}/{total} "
            f"{outcome.spec.describe()} {status} {outcome.seconds:.1f}s",
            file=self.progress_stream,
            flush=True,
        )


# ----------------------------------------------------------------------
# Campaign planning: turn exhibits into a unit list
# ----------------------------------------------------------------------
def _planning_record(
    app: str, detector: str, memory: str, races, seed: int
) -> RunRecord:
    """A plausible synthetic record for dry-running exhibit code."""
    return RunRecord(
        app=app,
        detector=detector,
        memory=memory,
        races_enabled=frozenset(races),
        cycles=1000,
        dram_data=100,
        dram_metadata=10,
        unique_races=0,
        race_types=frozenset(),
        race_keys=frozenset(),
        verified=True,
        wall_seconds=0.0,
        seed=seed,
    )


class PlanningRunner(Runner):
    """Dry-run runner: records the request stream, simulates nothing.

    Exhibit request streams are value-independent (they iterate fixed
    app/detector/memory grids), so answering every request with a
    synthetic record reproduces exactly the unit list the real render
    pass will ask for.
    """

    def __init__(self):
        super().__init__(verbose=False)
        self.requests: List[RunSpec] = []

    def _simulate(self, app_cls, detector, memory, races, seed=1):
        spec = RunSpec(
            app_cls.name, detector, memory, tuple(sorted(races)), seed
        )
        self.requests.append(spec)
        return _planning_record(app_cls.name, detector, memory, races, seed)

    def _persist(self, record):  # planning must never touch disk
        pass


def plan_exhibits(exhibits: Dict[str, object],
                  names: Sequence[str]) -> List[RunSpec]:
    """Collect the deduplicated unit list the named exhibits will request.

    Best-effort: an exhibit that errors mid-plan still contributes the
    units it requested before failing.
    """
    planner = PlanningRunner()
    for name in names:
        render = exhibits.get(name)
        if render is None:
            continue
        try:
            render(planner)
        except Exception:
            # The real pass will surface this error (or succeed where
            # planning could not); planning only needs the request log.
            pass
    return dedupe_specs(planner.requests)


# ----------------------------------------------------------------------
# Wiring: prefetch a campaign into a runner
# ----------------------------------------------------------------------
def prefetch_exhibits(
    runner: CampaignRunner,
    exhibits: Dict[str, object],
    names: Sequence[str],
    jobs: int,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
    pool=None,
) -> Optional[CampaignOutcome]:
    """Plan the campaign, execute it in parallel, warm *runner*'s cache.

    With *pool* (a :class:`~repro.experiments.supervisor.PoolSupervisor`)
    the units are served by persistent warm workers instead of a fresh
    subprocess per unit; without it, the shards fall back to driving
    *runner*'s own per-unit executor.  After this returns, the exhibits'
    own ``runner.run`` calls are memory-cache hits (or immediate,
    non-retried failures for units the prefetch exhausted retries on).
    Returns the merged outcome, or ``None`` if nothing needed running.
    """
    units = plan_exhibits(exhibits, names)
    # Units already resumed from the store need no work.
    pending = [u for u in units if u.key() not in runner._cache]
    if not pending:
        return None
    if verbose:
        print(
            f"  [parallel] {len(pending)} unit(s) across {jobs} shard(s)"
            f"{' (cache: ' + cache.root + ')' if cache else ''}",
            file=sys.stderr,
            flush=True,
        )
    # Store writes are strictly parent-side: the shards append under a
    # lock and workers never see the store path at all, so no worker
    # fault — SIGKILL mid-unit included — can tear a JSONL line.
    store = runner._store
    executor = pool if pool is not None else runner.executor
    parallel = ParallelCampaignExecutor(
        executor,
        jobs=jobs,
        cache=cache,
        store=store,
        verbose=verbose,
        telemetry=runner.telemetry,
    )
    outcome = parallel.run_units(pending)
    # The manifest's profile section reports per-shard utilization and
    # cache hit/miss latency from the most recent parallel phase.
    runner.last_parallel_outcome = outcome
    for unit in outcome.outcomes:
        if unit.record is not None:
            runner._cache[unit.spec.key()] = unit.record
            if unit.source == "cache":
                runner.cached_runs += 1
                if store is not None:
                    store.append(unit.record)
            else:
                runner.fresh_runs += 1
        elif unit.failure is not None:
            runner.prefailed[unit.spec.key()] = unit.failure
            runner.failures.append(unit.failure)
    return outcome
