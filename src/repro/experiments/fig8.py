"""Figure 8 — execution cycles normalized to no race detection.

Two bars per application: the base design without metadata caching, and
ScoRD (4B granularity + software metadata cache).  The paper reports a 35%
average overhead for ScoRD with 1DC worst (~88%) because of its atomic-
heavy network traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner
from repro.experiments.tables import failed_cell, is_failed, render_table
from repro.scor.apps.registry import ALL_APPS


def _fmt_cell(value) -> str:
    return value if is_failed(value) else f"{value:.2f}"


@dataclasses.dataclass
class Fig8Result:
    # app, base_norm, scord_norm; failed runs carry failed_cell() markers
    rows: List[Tuple[str, object, object]]

    def _average(self, index: int) -> float:
        values = [row[index] for row in self.rows if not is_failed(row[index])]
        return sum(values) / len(values) if values else 0.0

    @property
    def scord_average(self) -> float:
        return self._average(2)

    @property
    def base_average(self) -> float:
        return self._average(1)

    def as_dict(self) -> Dict[str, Tuple[object, object]]:
        return {app: (base, scord) for app, base, scord in self.rows}

    def render(self) -> str:
        rows = [
            (app, _fmt_cell(base), _fmt_cell(scord))
            for app, base, scord in self.rows
        ]
        rows.append(("AVG", f"{self.base_average:.2f}", f"{self.scord_average:.2f}"))
        return render_table(
            "Figure 8: execution cycles normalized to no detection",
            ["workload", "base w/o caching", "ScoRD"],
            rows,
            note=(
                "Paper: ScoRD averages ~1.35x with 1DC worst (~1.88x); the "
                "base design without metadata caching is uniformly worse."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import grouped_bars

        plotted = [row for row in self.rows if not is_failed(row[1])]
        labels = [app for app, _b, _s in plotted]
        return grouped_bars(
            "Figure 8 (bars): normalized execution cycles",
            labels,
            [
                ("base", [b for _a, b, _s in plotted]),
                ("scord", [s for _a, _b, s in plotted]),
            ],
            reference=1.0,
            reference_label="no detection (1.0)",
        )


def run_fig8(runner: Runner) -> Fig8Result:
    rows = []
    for app_cls in ALL_APPS:
        try:
            none = runner.run(app_cls, detector="none")
            base = runner.run(app_cls, detector="base")
            scord = runner.run(app_cls, detector="scord")
        except ReproError as err:
            marker = failed_cell(error_code(err))
            rows.append((app_cls.name, marker, marker))
            continue
        rows.append(
            (app_cls.name, base.cycles / none.cycles, scord.cycles / none.cycles)
        )
    return Fig8Result(rows)
