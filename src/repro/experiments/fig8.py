"""Figure 8 — execution cycles normalized to no race detection.

Two bars per application: the base design without metadata caching, and
ScoRD (4B granularity + software metadata cache).  The paper reports a 35%
average overhead for ScoRD with 1DC worst (~88%) because of its atomic-
heavy network traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.experiments.runner import Runner
from repro.experiments.tables import render_table
from repro.scor.apps.registry import ALL_APPS


@dataclasses.dataclass
class Fig8Result:
    rows: List[Tuple[str, float, float]]  # app, base_norm, scord_norm

    @property
    def scord_average(self) -> float:
        return sum(row[2] for row in self.rows) / len(self.rows)

    @property
    def base_average(self) -> float:
        return sum(row[1] for row in self.rows) / len(self.rows)

    def as_dict(self) -> Dict[str, Tuple[float, float]]:
        return {app: (base, scord) for app, base, scord in self.rows}

    def render(self) -> str:
        rows = [
            (app, f"{base:.2f}", f"{scord:.2f}") for app, base, scord in self.rows
        ]
        rows.append(("AVG", f"{self.base_average:.2f}", f"{self.scord_average:.2f}"))
        return render_table(
            "Figure 8: execution cycles normalized to no detection",
            ["workload", "base w/o caching", "ScoRD"],
            rows,
            note=(
                "Paper: ScoRD averages ~1.35x with 1DC worst (~1.88x); the "
                "base design without metadata caching is uniformly worse."
            ),
        )

    def chart(self) -> str:
        from repro.experiments.charts import grouped_bars

        labels = [app for app, _b, _s in self.rows]
        return grouped_bars(
            "Figure 8 (bars): normalized execution cycles",
            labels,
            [
                ("base", [b for _a, b, _s in self.rows]),
                ("scord", [s for _a, _b, s in self.rows]),
            ],
            reference=1.0,
            reference_label="no detection (1.0)",
        )


def run_fig8(runner: Runner) -> Fig8Result:
    rows = []
    for app_cls in ALL_APPS:
        none = runner.run(app_cls, detector="none")
        base = runner.run(app_cls, detector="base")
        scord = runner.run(app_cls, detector="scord")
        rows.append(
            (app_cls.name, base.cycles / none.cycles, scord.cycles / none.cycles)
        )
    return Fig8Result(rows)
