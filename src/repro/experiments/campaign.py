"""Fault-tolerant campaign execution: crash isolation, timeout, retry.

The in-process :class:`~repro.experiments.runner.Runner` is fast but
fragile — one hung kernel wedges the whole ``scord-experiments all``
campaign and one crash loses it.  This module supplies the resilient
execution layer:

* each simulation runs in a **worker subprocess** (``python -m
  repro.experiments.campaign``), so a crash or hang is contained to one
  run;
* the parent enforces a **wall-clock timeout** (the worker additionally
  arms an in-process :class:`~repro.common.guard.Watchdog` at ~80% of
  it, so simulator-level hangs die with a structured hang report before
  the SIGKILL);
* failures are **retried with exponential backoff** up to a bound, then
  surfaced as a :class:`~repro.common.errors.RunFailedError` carrying a
  structured :class:`RunFailure` — which exhibits render as
  ``FAILED(reason)`` cells and the CLI collects into a failure manifest;
* completed records are durably appended to the
  :class:`~repro.experiments.store.RunStore` **by the parent, never the
  worker**: a worker that is SIGKILLed, OOM-killed, or desyncs mid-unit
  can therefore never tear a line in the shared JSONL store — the blast
  radius of a worker fault is exactly one in-flight unit.

Fault injection (``repro.experiments.faults``) plugs in as a per-attempt
plan the parent serializes into the worker spec — recovery paths are
proven by tests, not assumed.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import subprocess
import sys
import threading
import time
from typing import List, Optional, Tuple, Type

from repro.common.errors import (
    ConfigError,
    ReproError,
    RunFailedError,
    RunTimeout,
    WorkerCrash,
    error_code,
)
from repro.common.guard import GuardConfig, Watchdog
from repro.experiments.runner import Runner, RunRecord
from repro.experiments.store import (
    RunStore,
    record_from_dict,
    record_to_dict,
)
from repro.scor.apps.base import ScorApp

SPEC_SCHEMA = 1

#: worker exit codes (parent classifies failures by these)
EXIT_OK = 0
EXIT_BAD_SPEC = 2
EXIT_REPRO_ERROR = 4
EXIT_UNEXPECTED = 5

_WORKER_ERROR_RE = re.compile(r"^\[worker-error\] ([a-z-]+): (.*)$")

#: retryable failure categories; deterministic misconfigurations are not
_NO_RETRY_CODES = frozenset({"config", "kernel"})


# ----------------------------------------------------------------------
# Specs and failures
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One simulation request, serializable across the worker boundary."""

    app: str
    detector: str = "scord"
    memory: str = "default"
    races: Tuple[str, ...] = ()
    seed: int = 1

    def describe(self) -> str:
        flags = f" races={sorted(self.races)}" if self.races else ""
        tag = f" seed={self.seed}" if self.seed != 1 else ""
        return f"{self.app}/{self.detector}/{self.memory}{flags}{tag}"

    def key(self):
        """The runner-cache identity of this spec."""
        from repro.experiments.store import run_key

        return run_key(
            self.app, self.detector, self.memory, self.races, self.seed
        )

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "app": self.app,
            "detector": self.detector,
            "memory": self.memory,
            "races": sorted(self.races),
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunSpec":
        if payload.get("schema") != SPEC_SCHEMA:
            raise ConfigError(
                f"unsupported spec schema {payload.get('schema')!r}"
            )
        return RunSpec(
            app=payload["app"],
            detector=payload.get("detector", "scord"),
            memory=payload.get("memory", "default"),
            races=tuple(payload.get("races", ())),
            seed=int(payload.get("seed", 1)),
        )


@dataclasses.dataclass
class RunFailure:
    """A run that failed permanently (all retries exhausted)."""

    spec: RunSpec
    category: str  # e.g. run-timeout, worker-crash, simulation
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "app": self.spec.app,
            "detector": self.spec.detector,
            "memory": self.spec.memory,
            "seed": self.spec.seed,
            "races": sorted(self.spec.races),
            "category": self.category,
            "message": self.message,
            "attempts": self.attempts,
        }


# ----------------------------------------------------------------------
# Parent side: the executor
# ----------------------------------------------------------------------
class CampaignExecutor:
    """Runs simulations in isolated workers with timeout and retry."""

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_retries: int = 1,
        backoff_seconds: float = 0.25,
        fault_plan=None,
        verbose: bool = False,
        flight=None,
        forensics_dir=None,
    ):
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.fault_plan = fault_plan
        self.verbose = verbose
        #: optional FlightConfig: workers capture each unit in flight and
        #: write forensic bundles for detected races into forensics_dir
        self.flight = flight
        self.forensics_dir = forensics_dir
        #: per-unit forensics summaries reported back by workers
        #: (list.append is atomic — dispatcher threads share this)
        self.forensics_units: List[dict] = []

    # ------------------------------------------------------------------
    def execute(self, spec: RunSpec) -> RunRecord:
        """Run *spec* to completion; raises :class:`RunFailedError`."""
        attempts = self.max_retries + 1
        last_category = "unknown"
        last_message = ""
        for attempt in range(1, attempts + 1):
            fault = None
            if self.fault_plan is not None:
                fault = self.fault_plan.action_for(
                    spec.app, spec.detector, spec.memory, attempt
                )
            try:
                return self._attempt(spec, fault)
            except (RunTimeout, WorkerCrash, ReproError) as err:
                last_category = error_code(err)
                last_message = str(err)
                if self.verbose:
                    print(
                        f"  [attempt {attempt}/{attempts} failed] "
                        f"{spec.describe()}: {last_category}: {last_message}",
                        file=sys.stderr,
                        flush=True,
                    )
                if last_category in _NO_RETRY_CODES:
                    break
                if attempt < attempts:
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        failure = RunFailure(spec, last_category, last_message, attempt)
        raise RunFailedError(
            f"{spec.describe()} failed after {attempt} attempt(s): "
            f"{last_category}: {last_message}",
            failure=failure,
        )

    # ------------------------------------------------------------------
    def _attempt(self, spec: RunSpec, fault: Optional[str]) -> RunRecord:
        payload = spec.to_dict()
        if self.timeout:
            # In-process watchdog fires before the parent's SIGKILL so
            # simulator-level hangs produce a structured hang report.
            payload["deadline"] = self.timeout * 0.8
        if fault is not None:
            payload["fault"] = fault
        if self.flight is not None:
            payload["flight"] = self.flight.to_dict()
            if self.forensics_dir:
                payload["forensics_dir"] = os.fspath(self.forensics_dir)
        cmd = [sys.executable, "-m", "repro.experiments.campaign"]
        try:
            proc = subprocess.run(
                cmd,
                input=json.dumps(payload),
                capture_output=True,
                text=True,
                timeout=self.timeout,
                env=_worker_env(),
            )
        except subprocess.TimeoutExpired:
            raise RunTimeout(
                f"worker exceeded the {self.timeout:g}s timeout and was "
                "killed"
            ) from None
        if proc.returncode == EXIT_OK:
            return self._parse_record(spec, proc.stdout)
        raise self._classify_failure(proc)

    def _parse_record(self, spec: RunSpec, stdout: str) -> RunRecord:
        lines = [
            line.strip() for line in stdout.splitlines() if line.strip()
        ]
        if not lines:
            raise WorkerCrash(
                f"worker for {spec.describe()} exited cleanly without a "
                "record"
            )
        # The record is the LAST line; earlier lines may carry
        # side-channel payloads (forensics summaries) or stray prints.
        try:
            record = record_from_dict(json.loads(lines[-1]))
        except (json.JSONDecodeError, ReproError) as err:
            raise WorkerCrash(
                f"worker for {spec.describe()} exited cleanly but "
                f"produced an unreadable record: {err}"
            ) from err
        for line in lines[:-1]:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and "forensics_unit" in payload:
                self.forensics_units.append(payload["forensics_unit"])
        return record

    @staticmethod
    def _classify_failure(proc) -> ReproError:
        stderr_lines = proc.stderr.strip().splitlines()
        for line in reversed(stderr_lines):
            match = _WORKER_ERROR_RE.match(line.strip())
            if match:
                code, message = match.groups()
                err = ReproError(message)
                err.code = code
                return err
        tail = " | ".join(stderr_lines[-3:]) if stderr_lines else "(no stderr)"
        return WorkerCrash(
            f"worker died with exit code {proc.returncode}: {tail}"
        )


def _worker_env() -> dict:
    """The parent's environment with this package importable."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return env


# ----------------------------------------------------------------------
# The resilient Runner
# ----------------------------------------------------------------------
class CampaignRunner(Runner):
    """A :class:`Runner` whose cache misses execute in isolated workers.

    Drop-in for the exhibits: same ``run()`` signature, same memoizing
    cache, but a hung or crashed simulation costs one run (retried, then
    marked failed) instead of the campaign.  Permanent failures are
    collected in :attr:`failures` for the CLI's manifest.
    """

    def __init__(
        self,
        executor: CampaignExecutor,
        verbose: bool = True,
        store: Optional[RunStore] = None,
        preload: bool = True,
        telemetry=None,
        flight=None,
        forensics_dir=None,
    ):
        # Telemetry note: kernel-level spans only exist for in-process
        # simulation; isolated workers run in their own interpreter, so
        # this runner's traces stop at the unit span (which still times
        # the worker round-trip).
        super().__init__(
            verbose=verbose, store=store, preload=preload,
            telemetry=telemetry, flight=flight, forensics_dir=forensics_dir,
        )
        # Capture happens worker-side; the executor ships the config and
        # collects the per-unit summaries the workers report back.
        if flight is not None:
            executor.flight = flight
            executor.forensics_dir = forensics_dir
        self.executor = executor
        self.failures: List[RunFailure] = []
        #: units a parallel prefetch already failed permanently; keyed by
        #: run_key, consulted so exhibits do not pay the retries twice
        self.prefailed: dict = {}

    def _all_forensics_units(self) -> List[dict]:
        return (
            list(self.forensics_units)
            + list(getattr(self.executor, "forensics_units", []))
        )

    def _simulate(
        self,
        app_cls: Type[ScorApp],
        detector: str,
        memory: str,
        races: Tuple[str, ...],
        seed: int = 1,
    ) -> RunRecord:
        spec = RunSpec(app_cls.name, detector, memory, tuple(races), seed)
        prior = self.prefailed.get(spec.key())
        if prior is not None:
            raise RunFailedError(
                f"{spec.describe()} already failed during the parallel "
                f"prefetch: {prior.category}: {prior.message}",
                failure=prior,
            )
        try:
            return self.executor.execute(spec)
        except RunFailedError as err:
            if err.failure is not None:
                self.failures.append(err.failure)
            raise

    def _persist(self, record: RunRecord) -> None:
        # Persistence is strictly parent-side: the worker never touches
        # the store (a crashing worker must not be able to tear a line),
        # so every fresh record is checkpointed here.
        super()._persist(record)


# ----------------------------------------------------------------------
# The in-process fallback executor
# ----------------------------------------------------------------------
class InProcessExecutor:
    """Serial in-process executor: the floor of the degradation ladder.

    Same ``execute(spec) -> RunRecord`` contract as
    :class:`CampaignExecutor`, but no subprocess at all — the simulation
    runs in the calling interpreter under a watchdog.  The pool
    supervisor falls back to this when workers cannot be sustained, so
    "the environment cannot keep a subprocess alive" degrades a campaign
    to slow-but-done rather than dead.  Calls are serialized by a lock:
    degraded throughput is serial by design (there is no isolation left
    to exploit), and the deterministic merge upstream is unaffected.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        flight=None,
        forensics_dir=None,
    ):
        self.timeout = timeout
        self.flight = flight
        self.forensics_dir = forensics_dir
        self.forensics_units: List[dict] = []
        self._lock = threading.Lock()

    def execute(self, spec: RunSpec) -> RunRecord:
        from repro.scor.apps.registry import app_by_name

        guard_factory = None
        if self.timeout:
            deadline = self.timeout * 0.8
            guard_factory = lambda: Watchdog(
                GuardConfig(deadline_seconds=deadline)
            )
        with self._lock:
            try:
                runner = Runner(
                    verbose=False,
                    guard_factory=guard_factory,
                    flight=self.flight,
                    forensics_dir=self.forensics_dir,
                )
                record = runner.run(
                    app_by_name(spec.app),
                    detector=spec.detector,
                    memory=spec.memory,
                    races=spec.races,
                    seed=spec.seed,
                )
                self.forensics_units.extend(runner.forensics_units)
                return record
            except ReproError as err:
                failure = RunFailure(
                    spec, error_code(err), str(err), attempts=1
                )
                raise RunFailedError(
                    f"{spec.describe()} failed in-process: "
                    f"{failure.category}: {failure.message}",
                    failure=failure,
                ) from err
            except KeyError as err:
                failure = RunFailure(spec, "config", str(err), attempts=1)
                raise RunFailedError(
                    f"{spec.describe()} failed in-process: config: {err}",
                    failure=failure,
                ) from err


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def worker_main(argv=None) -> int:
    """``python -m repro.experiments.campaign``: run one spec from stdin.

    Protocol: read a JSON spec on stdin; simulate; print the record as
    one JSON line on stdout.  The *parent* persists the record — a
    worker never opens the store, so no worker fault can corrupt it.
    Errors exit non-zero with a final ``[worker-error] code: message``
    line on stderr.
    """
    raw = sys.stdin.read()
    try:
        payload = json.loads(raw)
        spec = RunSpec.from_dict(payload)
    except (json.JSONDecodeError, KeyError, ReproError) as err:
        print(f"[worker-error] config: bad spec: {err}", file=sys.stderr)
        return EXIT_BAD_SPEC

    # Injected faults fire before the simulation, exactly like a real
    # hang/crash would strike mid-campaign.
    from repro.experiments.faults import apply_fault

    try:
        apply_fault(payload.get("fault"))
        deadline = payload.get("deadline")
        guard_factory = None
        if deadline:
            guard_factory = lambda: Watchdog(
                GuardConfig(deadline_seconds=float(deadline))
            )
        from repro.scor.apps.registry import app_by_name

        flight = None
        if payload.get("flight") is not None:
            from repro.telemetry.flight import FlightConfig

            flight = FlightConfig.from_dict(payload["flight"])
        runner = Runner(
            verbose=False,
            guard_factory=guard_factory,
            flight=flight,
            forensics_dir=payload.get("forensics_dir"),
        )
        record = runner.run(
            app_by_name(spec.app),
            detector=spec.detector,
            memory=spec.memory,
            races=spec.races,
            seed=spec.seed,
        )
    except ReproError as err:
        if err.diagnostics:
            print(err.diagnostics, file=sys.stderr)
        print(f"[worker-error] {err.code}: {err}", file=sys.stderr)
        return EXIT_REPRO_ERROR
    except KeyError as err:
        print(f"[worker-error] config: {err}", file=sys.stderr)
        return EXIT_BAD_SPEC
    except Exception as err:  # noqa: BLE001 - the whole point is isolation
        print(
            f"[worker-error] worker-crash: {type(err).__name__}: {err}",
            file=sys.stderr,
        )
        return EXIT_UNEXPECTED

    # Side-channel lines precede the record line (the parent parses the
    # last line as the record and collects these).
    for entry in runner.forensics_units:
        print(json.dumps({"forensics_unit": entry}, separators=(",", ":")))
    print(json.dumps(record_to_dict(record), separators=(",", ":")))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(worker_main())
