"""Table VII — false positives vs metadata tracking granularity.

Correctly synchronized applications are run under four detector
configurations: the 4-byte base design (no caching, 200% memory overhead),
its 8-byte (100%) and 16-byte (50%) coarse-granularity variants, and full
ScoRD (12.5%).  Every race reported on a correct program is a false
positive.  The paper: 4B and ScoRD report zero; 8B/16B report many,
especially for the graph applications whose irregular accesses make
unrelated data share metadata entries.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.common.errors import ReproError, error_code
from repro.experiments.runner import Runner
from repro.experiments.tables import failed_cell, render_table
from repro.scor.apps.registry import ALL_APPS

_CONFIGS = ("base", "base8", "base16", "scord")
_OVERHEADS = ("200%", "100%", "50%", "12.5%")


@dataclasses.dataclass
class Table7Result:
    rows: List[List[object]]  # app, fp@4B, fp@8B, fp@16B, fp@ScoRD

    def render(self) -> str:
        header_rows = [["(metadata overhead)", *_OVERHEADS]]
        header_rows.extend(self.rows)
        return render_table(
            "Table VII: false positives vs tracking granularity",
            ["workload", "4-byte", "8-byte", "16-byte", "ScoRD"],
            header_rows,
            note=(
                "Paper: zero false positives at 4B and for ScoRD; 8B/16B "
                "produce many, worst for the graph applications."
            ),
        )

    def false_positive_counts(self, config: str) -> List[int]:
        index = 1 + _CONFIGS.index(config)
        return [row[index] for row in self.rows]


def run_table7(runner: Runner) -> Table7Result:
    rows = []
    for app_cls in ALL_APPS:
        row: List[object] = [app_cls.name]
        for config in _CONFIGS:
            try:
                record = runner.run(app_cls, detector=config)
            except ReproError as err:
                row.append(failed_cell(error_code(err)))
                continue
            row.append(record.unique_races)
        rows.append(row)
    return Table7Result(rows)
