"""Shared, memoizing simulation runner for the experiment harnesses.

An experiment asks for "application X under detector config Y on GPU
config Z" and receives a :class:`RunRecord`.  Identical requests (e.g.
Fig. 8's ScoRD runs and Fig. 9's DRAM breakdown of the same runs) are
simulated once per process.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from repro.arch.config import GPUConfig, MemoryPreset, memory_preset
from repro.arch.detector_config import DetectorConfig, DetectorMode
from repro.scord.races import RaceType
from repro.scor.apps.base import ScorApp, run_app

if False:  # typing-only, avoids a runtime import cycle with store.py
    from repro.experiments.store import RunStore


# ----------------------------------------------------------------------
# Detector configuration labels used across the evaluation
# ----------------------------------------------------------------------
DETECTORS: Dict[str, DetectorConfig] = {
    "none": DetectorConfig.none(),
    "base": DetectorConfig.base_no_cache(),  # 4B, no metadata caching
    "base8": DetectorConfig.base_no_cache(granularity_bytes=8),
    "base16": DetectorConfig.base_no_cache(granularity_bytes=16),
    "scord": DetectorConfig.scord(),
    "scord-nolhd": dataclasses.replace(DetectorConfig.scord(), model_lhd=False),
    "scord-nonoc": dataclasses.replace(
        DetectorConfig.scord(), model_noc=False, packet_overhead_bytes=0
    ),
    "scord-nomd": dataclasses.replace(DetectorConfig.scord(), model_md=False),
}

MEMORY_PRESETS: Tuple[str, ...] = ("low", "default", "high")


def gpu_config_for(preset: str) -> GPUConfig:
    base = GPUConfig.scaled_default()
    return memory_preset(base, MemoryPreset(preset))


@dataclasses.dataclass
class RunRecord:
    """Everything the exhibits need from one simulation."""

    app: str
    detector: str
    memory: str
    races_enabled: FrozenSet[str]
    cycles: int
    dram_data: int
    dram_metadata: int
    unique_races: int
    race_types: FrozenSet[RaceType]
    race_keys: FrozenSet[Tuple[RaceType, Tuple[str, int]]]
    verified: bool
    wall_seconds: float
    seed: int = 1

    @property
    def dram_total(self) -> int:
        return self.dram_data + self.dram_metadata


class Runner:
    """Memoizing simulation front-end for the experiments.

    With a :class:`~repro.experiments.store.RunStore` attached the cache
    becomes disk-backed: every fresh simulation is durably appended, and
    (with ``preload=True``) previously completed runs are loaded up
    front — that is what gives ``scord-experiments --resume`` its
    checkpoint/resume behavior.
    """

    def __init__(
        self,
        verbose: bool = True,
        store: "Optional[RunStore]" = None,
        preload: bool = True,
        guard_factory=None,
        result_cache=None,
        telemetry=None,
        flight=None,
        forensics_dir=None,
    ):
        self._cache: Dict[Tuple, RunRecord] = {}
        self.verbose = verbose
        self._store = store
        #: optional :class:`~repro.telemetry.FlightConfig` — when set,
        #: every unit simulates under a *fresh* flight recorder (so one
        #: unit's events never bleed into another's trace slices) and
        #: detected races get forensic bundles
        self.flight_config = flight
        #: directory forensic bundles are written to, one subdir per unit
        self.forensics_dir = forensics_dir
        #: per-unit forensics summaries (unit label, bundle count, types)
        self.forensics_units: List[dict] = []
        if flight is not None and telemetry is None:
            # Flight capture needs a telemetry bundle to ride on; build a
            # tracing-off one rather than silently dropping the capture.
            from repro.telemetry import Telemetry, TraceConfig

            telemetry = Telemetry(TraceConfig(enabled=False), flight=flight)
        #: optional :class:`repro.telemetry.Telemetry` bundle — unit
        #: spans, per-source latency histograms, and campaign totals
        self.telemetry = telemetry
        #: simulations actually executed by this process (cache misses)
        self.fresh_runs = 0
        #: records recovered from the store rather than simulated
        self.resumed_runs = 0
        #: records served by the content-addressed result cache
        self.cached_runs = 0
        #: optional () -> Watchdog factory guarding in-process runs
        self.guard_factory = guard_factory
        #: optional :class:`repro.experiments.parallel.ResultCache`
        self.result_cache = result_cache
        if store is not None and preload:
            loaded = store.load()
            self._cache.update(loaded)
            self.resumed_runs = len(loaded)
            if self.verbose and loaded:
                quarantined = (
                    f" ({store.quarantined} corrupt line(s) quarantined)"
                    if store.quarantined
                    else ""
                )
                print(
                    f"  [resume] {len(loaded)} completed run(s) loaded "
                    f"from {store.path}{quarantined}",
                    file=sys.stderr,
                    flush=True,
                )

    def run(
        self,
        app_cls: Type[ScorApp],
        detector: str = "scord",
        memory: str = "default",
        races: Tuple[str, ...] = (),
        seed: int = 1,
    ) -> RunRecord:
        key = (app_cls.name, detector, memory, frozenset(races), seed)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        # Flight capture only happens when a unit actually simulates, so
        # with forensics on the disk cache is bypassed (memoization above
        # still deduplicates within the campaign): every unique unit is
        # guaranteed a capture and, if racy, a bundle.
        if self.result_cache is not None and self.flight_config is None:
            started = time.time()
            hit = self.result_cache.get(
                app_cls.name, detector, memory, races, seed
            )
            if hit is not None:
                self.cached_runs += 1
                self._cache[key] = hit
                self._persist(hit)
                self._observe_unit(
                    app_cls.name, detector, memory,
                    "cache", time.time() - started, hit,
                )
                return hit

        if self.verbose:
            flags = f" races={sorted(races)}" if races else ""
            tag = f" seed={seed}" if seed != 1 else ""
            print(
                f"  [run] {app_cls.name} detector={detector} "
                f"memory={memory}{flags}{tag}",
                file=sys.stderr,
                flush=True,
            )
        started = time.time()
        if self.telemetry is not None:
            with self.telemetry.tracer.span(
                f"unit:{app_cls.name}/{detector}/{memory}",
                cat="exp",
                races=sorted(races),
                seed=seed,
            ):
                record = self._simulate(app_cls, detector, memory, races, seed)
        else:
            record = self._simulate(app_cls, detector, memory, races, seed)
        self.fresh_runs += 1
        self._cache[key] = record
        self._persist(record)
        if self.result_cache is not None:
            self.result_cache.put(record)
        self._observe_unit(
            app_cls.name, detector, memory,
            "run", time.time() - started, record,
        )
        return record

    def _observe_unit(
        self, app: str, detector: str, memory: str,
        source: str, seconds: float, record: RunRecord,
    ) -> None:
        """Fold one completed unit into the campaign-level metrics."""
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.counter("exp.units.total").inc()
        metrics.counter(f"exp.units.{source}").inc()
        metrics.histogram("exp.unit.seconds", source=source).observe(seconds)
        metrics.counter("exp.sim.cycles").inc(record.cycles)
        metrics.counter("exp.sim.dram.data").inc(record.dram_data)
        metrics.counter("exp.sim.dram.metadata").inc(record.dram_metadata)
        metrics.counter("exp.sim.races.unique").inc(record.unique_races)

    # -- overridable by the campaign layer -----------------------------
    def _simulate(
        self,
        app_cls: Type[ScorApp],
        detector: str,
        memory: str,
        races: Tuple[str, ...],
        seed: int = 1,
    ) -> RunRecord:
        """Execute one simulation in-process and build its record."""
        started = time.time()
        app = app_cls(races=races, seed=seed)
        guard = self.guard_factory() if self.guard_factory else None
        # With tracing on, also sample the timing fabric so the trace
        # carries utilization counter tracks alongside the kernel spans.
        tracing = self.telemetry is not None and self.telemetry.enabled
        if self.flight_config is not None:
            # Fresh recorder per unit: cycles restart at 0 every
            # simulation, so a shared recorder would interleave units
            # into nonsense trace slices.
            from repro.telemetry.flight import FlightRecorder

            self.telemetry.flight = FlightRecorder(self.flight_config)
        gpu = run_app(
            app,
            detector_config=DETECTORS[detector],
            gpu_config=gpu_config_for(memory),
            guard=guard,
            telemetry=self.telemetry,
            sample_interval=2000 if tracing else 0,
        )
        if self.flight_config is not None:
            self._collect_forensics(
                gpu, app_cls.name, detector, memory, races, seed
            )
        try:
            verified = app.verify(gpu)
        except Exception:
            verified = False
        dram_data, dram_metadata = gpu.dram_accesses()
        return RunRecord(
            app=app_cls.name,
            detector=detector,
            memory=memory,
            races_enabled=frozenset(races),
            cycles=gpu.total_cycles,
            dram_data=dram_data,
            dram_metadata=dram_metadata,
            unique_races=gpu.races.unique_count,
            race_types=frozenset(
                record.race_type for record in gpu.races.unique_races
            ),
            race_keys=frozenset(
                record.key for record in gpu.races.unique_races
            ),
            verified=verified,
            wall_seconds=time.time() - started,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Forensics (flight capture)
    # ------------------------------------------------------------------
    @staticmethod
    def unit_label(
        app: str, detector: str, memory: str,
        races: Tuple[str, ...], seed: int,
    ) -> str:
        """Filesystem-safe identity of one unit (bundle subdirectory)."""
        label = f"{app}.{detector}.{memory}"
        if races:
            label += "." + "+".join(sorted(races))
        if seed != 1:
            label += f".s{seed}"
        return label

    def _collect_forensics(
        self,
        gpu,
        app: str,
        detector: str,
        memory: str,
        races: Tuple[str, ...],
        seed: int,
    ) -> None:
        """Bundle this unit's detected races; fold capture telemetry."""
        import os

        from repro.forensics.bundle import bundles_for_gpu, write_bundles

        capture = getattr(gpu, "flight_capture", None)
        if capture is None:
            return
        label = self.unit_label(app, detector, memory, races, seed)
        bundles = bundles_for_gpu(gpu, source=f"unit:{label}")
        entry = {
            "unit": label,
            "app": app,
            "detector": detector,
            "memory": memory,
            "races_enabled": sorted(races),
            "seed": seed,
            "bundles": len(bundles),
            "race_types": sorted(
                {bundle["race"]["type"] for bundle in bundles}
            ),
            "rule_agreement": sum(
                1 for bundle in bundles if bundle["hb"]["rule_agrees"]
            ),
            "dir": None,
        }
        if self.forensics_dir and bundles:
            unit_dir = os.path.join(self.forensics_dir, label)
            write_bundles(bundles, unit_dir)
            entry["dir"] = unit_dir
        self.forensics_units.append(entry)
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            recorder = self.telemetry.flight
            metrics.counter("flight.units").inc()
            metrics.counter("flight.total.events").inc(recorder.recorded)
            metrics.counter("flight.total.dropped").inc(recorder.dropped)
            metrics.counter("forensics.bundles").inc(len(bundles))
            metrics.counter("forensics.rule_agreement").inc(
                entry["rule_agreement"]
            )

    def _all_forensics_units(self) -> List[dict]:
        """Every unit summary this runner knows about (overridable)."""
        return list(self.forensics_units)

    def forensics_section(self) -> Optional[dict]:
        """The campaign manifest's ``forensics`` block (None when off)."""
        if self.flight_config is None:
            return None
        by_type: Dict[str, int] = {}
        bundles = 0
        agreement = 0
        units = self._all_forensics_units()
        for entry in units:
            bundles += entry["bundles"]
            agreement += entry["rule_agreement"]
            for race_type in entry["race_types"]:
                by_type[race_type] = by_type.get(race_type, 0) + 1
        return {
            "dir": self.forensics_dir,
            "flight_mode": self.flight_config.mode,
            "units_captured": len(units),
            "bundles": bundles,
            "rule_agreement": agreement,
            "units_by_race_type": dict(sorted(by_type.items())),
            "units": units,
        }

    def _persist(self, record: RunRecord) -> None:
        """Durably checkpoint one fresh record (no-op without a store)."""
        if self._store is not None:
            self._store.append(record)

    def runs_done(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def records(self) -> List[RunRecord]:
        """All simulated records, in insertion order."""
        return list(self._cache.values())

    def dump_json(self, path) -> None:
        """Write every simulated record to *path* as JSON.

        The write is atomic (temp file + rename): a crash mid-dump never
        leaves a half-written file behind.
        """
        from repro.experiments.store import atomic_write_json, record_to_dict

        payload = [record_to_dict(record) for record in self._cache.values()]
        atomic_write_json(path, payload)
