"""Compare two experiment dumps (``scord-experiments --dump``).

Useful when calibrating the simulator or reviewing a change: run the
exhibits before and after, dump both, and diff:

    scord-experiments fig8 --quiet --dump before.json
    # ... change something ...
    scord-experiments fig8 --quiet --dump after.json
    python -m repro.experiments.compare before.json after.json

Records are matched on (app, detector, memory, races_enabled); the report
lists cycle and DRAM deltas, detection-outcome changes, and records that
exist on only one side.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Dict, List, Tuple

from repro.experiments.tables import render_table

Key = Tuple[str, str, str, Tuple[str, ...]]


def _load(path: str) -> Dict[Key, dict]:
    with open(path) as handle:
        records = json.load(handle)
    table: Dict[Key, dict] = {}
    for record in records:
        key = (
            record["app"],
            record["detector"],
            record["memory"],
            tuple(record.get("races_enabled", [])),
        )
        table[key] = record
    return table


@dataclasses.dataclass
class Comparison:
    """Structured diff of two dumps."""

    changed: List[Tuple[Key, dict, dict]]
    only_before: List[Key]
    only_after: List[Key]
    unchanged: int

    @property
    def any_difference(self) -> bool:
        return bool(self.changed or self.only_before or self.only_after)

    def render(self, threshold: float = 0.02) -> str:
        rows = []
        for key, before, after in self.changed:
            app, detector, memory, races = key
            label = f"{app}/{detector}" + (f"+{','.join(races)}" if races else "")
            if memory != "default":
                label += f"@{memory}"
            cycles_delta = (
                (after["cycles"] - before["cycles"]) / max(1, before["cycles"])
            )
            dram_before = before["dram_data"] + before["dram_metadata"]
            dram_after = after["dram_data"] + after["dram_metadata"]
            dram_delta = (dram_after - dram_before) / max(1, dram_before)
            races_note = ""
            if before["unique_races"] != after["unique_races"]:
                races_note = (
                    f"{before['unique_races']}->{after['unique_races']}"
                )
            verified_note = ""
            if before["verified"] != after["verified"]:
                verified_note = f"{before['verified']}->{after['verified']}"
            rows.append(
                (
                    label,
                    f"{100 * cycles_delta:+.1f}%",
                    f"{100 * dram_delta:+.1f}%",
                    races_note or "-",
                    verified_note or "-",
                )
            )
        out = [
            render_table(
                f"Dump comparison ({len(self.changed)} changed, "
                f"{self.unchanged} unchanged)",
                ["run", "cycles", "dram", "races", "verified"],
                rows or [["(no changes above threshold)", "", "", "", ""]],
            )
        ]
        if self.only_before:
            out.append(f"only in BEFORE: {len(self.only_before)} record(s)")
        if self.only_after:
            out.append(f"only in AFTER: {len(self.only_after)} record(s)")
        return "\n".join(out)


def compare(before_path: str, after_path: str,
            threshold: float = 0.02) -> Comparison:
    """Diff two dumps; *threshold* is the relative cycle/DRAM change below
    which a record counts as unchanged (detection changes always count)."""
    before = _load(before_path)
    after = _load(after_path)
    changed = []
    unchanged = 0
    for key in sorted(set(before) & set(after)):
        b, a = before[key], after[key]
        cycles_delta = abs(a["cycles"] - b["cycles"]) / max(1, b["cycles"])
        dram_b = b["dram_data"] + b["dram_metadata"]
        dram_a = a["dram_data"] + a["dram_metadata"]
        dram_delta = abs(dram_a - dram_b) / max(1, dram_b)
        detection_changed = (
            a["unique_races"] != b["unique_races"]
            or a["verified"] != b["verified"]
            or a.get("race_types") != b.get("race_types")
        )
        if detection_changed or cycles_delta > threshold or dram_delta > threshold:
            changed.append((key, b, a))
        else:
            unchanged += 1
    return Comparison(
        changed=changed,
        only_before=sorted(set(before) - set(after)),
        only_after=sorted(set(after) - set(before)),
        unchanged=unchanged,
    )


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print("usage: python -m repro.experiments.compare BEFORE.json AFTER.json",
              file=sys.stderr)
        return 2
    result = compare(args[0], args[1])
    print(result.render())
    return 1 if result.any_difference else 0


if __name__ == "__main__":
    sys.exit(main())
