"""Persistent warm worker pool: fork once, serve many simulation units.

PR 1's crash isolation ran every simulation in a fresh ``python -m
repro.experiments.campaign`` subprocess — robust, but each unit paid
interpreter start + engine re-import + result marshal, and
``BENCH_campaign.json`` recorded the consequence: ``--jobs 4`` was
*slower* than serial (0.88x).  This module keeps the isolation boundary
(one worker process per concurrent unit, a crash costs one unit) while
paying the spawn cost **once per worker** instead of once per unit:

* a **worker** (``python -m repro.experiments.pool``) boots, pre-imports
  the engine, announces ``ready``, then serves ``run`` requests over a
  length-prefixed JSON frame protocol on stdin/stdout until told to shut
  down (or until its TTL recycles it);
* while a unit simulates, the worker streams **heartbeat frames** from
  inside the event loop (via the PR 1 :class:`~repro.common.guard.
  Watchdog` hook), so the parent can tell "still crunching" from "hung"
  without killing anything;
* the parent-side :class:`WorkerHandle` owns exactly one worker and maps
  every way the stream can go wrong onto the structured error taxonomy:
  silence → :class:`~repro.common.errors.WorkerHang`, EOF/death →
  :class:`~repro.common.errors.WorkerCrash`, truncated or corrupt frames
  → :class:`~repro.common.errors.ProtocolDesync`, a partial frame that
  trickles without completing → :class:`~repro.common.errors.
  SlowLorisWorker`.

Scheduling policy — which worker runs what, recycling after faults,
retry/backoff, poison-unit quarantine, and degradation — lives one layer
up in :class:`repro.experiments.supervisor.PoolSupervisor`.  This module
is only the mechanism: one process, one pipe, one unit at a time.

Determinism is preserved by construction: a worker builds a **fresh**
:class:`~repro.experiments.runner.Runner` per unit, so a warm worker's
Nth unit sees exactly the state a cold subprocess would — the
jobs=N ≡ jobs=1 record-identity the equivalence tests pin.
"""

from __future__ import annotations

import json
import os
import select
import struct
import subprocess
import sys
import time
from typing import Optional

from repro.common.errors import (
    ProtocolDesync,
    ReproError,
    RunTimeout,
    SlowLorisWorker,
    WorkerCrash,
    WorkerHang,
)
from repro.common.guard import GuardConfig, Watchdog
from repro.experiments.campaign import RunSpec, _worker_env
from repro.experiments.runner import RunRecord
from repro.experiments.store import record_from_dict, record_to_dict

#: frame wire format: 4-byte big-endian length + UTF-8 JSON object
_LEN = struct.Struct(">I")

#: a frame longer than this is a desynced stream, not a real payload
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: protocol version spoken on the pipe (checked in the ready frame)
POOL_PROTOCOL = 1

#: how often a busy worker proves liveness (overridable per run frame)
DEFAULT_HEARTBEAT_SECONDS = 0.5


# ----------------------------------------------------------------------
# Frame encode / decode
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + canonical JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolDesync(
            f"refusing to send a {len(body)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(body)) + body


def write_frame(stream, payload: dict) -> None:
    stream.write(encode_frame(payload))
    stream.flush()


def read_frame(stream) -> Optional[dict]:
    """Blocking frame read from a buffered stream (worker side).

    Returns ``None`` on clean EOF at a frame boundary (the parent closed
    the pipe — treat as shutdown).  Raises :class:`ProtocolDesync` on a
    torn prefix, torn body, oversized length, or non-JSON body.
    """
    prefix = stream.read(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolDesync(f"torn length prefix ({len(prefix)} bytes)")
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolDesync(f"absurd frame length {length}")
    body = stream.read(length)
    if len(body) < length:
        raise ProtocolDesync(
            f"torn frame body ({len(body)}/{length} bytes)"
        )
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolDesync(f"frame body is not JSON: {err}") from err


class FrameTimeout(ReproError):
    """Internal to the parent-side reader: no bytes arrived in time.

    Never escapes :class:`WorkerHandle` — it is translated into
    :class:`WorkerHang` (total silence) with the liveness context only
    the handle knows.
    """

    code = "frame-timeout"


class _FrameReader:
    """Deadline-aware frame reader over a worker's stdout fd.

    Buffered readers lie to ``select`` (bytes can sit in the Python
    buffer while the fd is quiet), so this reads the raw fd with
    ``os.read`` into its own buffer and uses ``select`` for timeouts.
    """

    def __init__(self, fd: int):
        self._fd = fd
        self._buf = bytearray()

    @property
    def partial_bytes(self) -> int:
        """Bytes of an incomplete frame currently buffered."""
        return len(self._buf)

    def read(self, timeout: float):
        """One frame within *timeout* seconds.

        Raises :class:`FrameTimeout` if *no* new byte arrives in time,
        :class:`SlowLorisWorker` if bytes trickled but the frame never
        completed within the window, :class:`WorkerCrash` on EOF.
        """
        deadline = time.monotonic() + timeout
        made_progress = False
        while True:
            frame = self._try_decode()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if made_progress or self._buf:
                    raise SlowLorisWorker(
                        f"frame trickled to {len(self._buf)} byte(s) "
                        f"without completing within {timeout:g}s"
                    )
                raise FrameTimeout(
                    f"no frame bytes within {timeout:g}s"
                )
            ready, _, _ = select.select([self._fd], [], [], remaining)
            if not ready:
                continue
            chunk = os.read(self._fd, 65536)
            if not chunk:
                raise WorkerCrash(
                    "worker closed its pipe mid-conversation"
                    + (f" ({len(self._buf)} buffered byte(s) torn)"
                       if self._buf else "")
                )
            self._buf += chunk
            made_progress = True

    def _try_decode(self) -> Optional[dict]:
        if len(self._buf) < _LEN.size:
            return None
        (length,) = _LEN.unpack(bytes(self._buf[: _LEN.size]))
        if length > MAX_FRAME_BYTES:
            raise ProtocolDesync(f"absurd frame length {length}")
        end = _LEN.size + length
        if len(self._buf) < end:
            return None
        body = bytes(self._buf[_LEN.size:end])
        del self._buf[:end]
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolDesync(f"frame body is not JSON: {err}") from err


# ----------------------------------------------------------------------
# Parent side: one handle per live worker process
# ----------------------------------------------------------------------
class WorkerHandle:
    """Owns one warm worker process and its pipe conversation.

    Lifecycle: ``spawn()`` (boot + engine pre-import + ready frame) →
    any number of ``run_unit()`` calls → ``shutdown()`` (graceful) or
    ``kill()`` (after a fault).  A handle whose stream faulted must not
    be reused — the supervisor recycles it.
    """

    def __init__(self, worker_id: int, spawn_timeout: float = 60.0):
        self.worker_id = worker_id
        self.spawn_timeout = spawn_timeout
        self.proc: Optional[subprocess.Popen] = None
        self._reader: Optional[_FrameReader] = None
        self._next_id = 0
        #: units completed by this worker (drives TTL recycling)
        self.units_served = 0
        #: heartbeat frames observed by this handle (telemetry)
        self.heartbeats_seen = 0
        #: structured log frames observed by this handle
        self.logs_seen = 0
        #: callback(events: list[dict]) for worker ``log`` frames —
        #: the supervisor points this at its campaign event log
        self.on_log = None
        self.spawned_at: Optional[float] = None

    @property
    def lifetime_seconds(self) -> float:
        """Wall-clock seconds since this worker became ready."""
        if self.spawned_at is None:
            return 0.0
        return time.monotonic() - self.spawned_at

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def spawn(self) -> None:
        """Boot the worker and block until it pre-imported the engine."""
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.pool"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_worker_env(),
        )
        self._reader = _FrameReader(self.proc.stdout.fileno())
        try:
            ready = self._reader.read(self.spawn_timeout)
        except FrameTimeout:
            self.kill()
            raise WorkerHang(
                f"worker {self.worker_id} did not become ready within "
                f"{self.spawn_timeout:g}s"
            ) from None
        except ReproError:
            self.kill()
            raise
        if ready.get("type") != "ready" or \
                ready.get("protocol") != POOL_PROTOCOL:
            self.kill()
            raise ProtocolDesync(
                f"worker {self.worker_id} opened with {ready!r} instead "
                f"of a protocol-{POOL_PROTOCOL} ready frame"
            )
        self.spawned_at = time.monotonic()

    # ------------------------------------------------------------------
    def run_unit(
        self,
        spec: RunSpec,
        deadline: Optional[float] = None,
        fault: Optional[str] = None,
        heartbeat_timeout: float = 10.0,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        flight: Optional[dict] = None,
        forensics_dir: Optional[str] = None,
        campaign: Optional[str] = None,
    ) -> RunRecord:
        """Drive one unit through the worker; return its record.

        *deadline* bounds the unit's wall clock (the worker arms an
        in-process watchdog at 80% of it, exactly like the PR 1
        subprocess path, so simulator hangs die with a hang report
        before the parent gives up).  *heartbeat_timeout* bounds
        silence: if no frame (heartbeat or result) arrives within it,
        the worker is declared hung.

        Raises the taxonomy: :class:`WorkerHang`, :class:`WorkerCrash`,
        :class:`ProtocolDesync`, :class:`SlowLorisWorker`, or the
        re-hydrated simulation error the worker reported.  On any of
        the first four the caller must ``kill()`` and recycle — the
        stream is no longer trustworthy.
        """
        if not self.alive:
            raise WorkerCrash(
                f"worker {self.worker_id} is not running"
            )
        self._next_id += 1
        request_id = self._next_id
        payload = {
            "type": "run",
            "id": request_id,
            "spec": spec.to_dict(),
            "heartbeat": heartbeat_seconds,
        }
        if deadline:
            payload["deadline"] = deadline * 0.8
        if fault is not None:
            payload["fault"] = fault
        if flight is not None:
            payload["flight"] = flight
            if forensics_dir:
                payload["forensics_dir"] = forensics_dir
        if campaign is not None:
            payload["campaign"] = campaign
        try:
            write_frame(self.proc.stdin, payload)
        except (BrokenPipeError, OSError) as err:
            raise WorkerCrash(
                f"worker {self.worker_id} pipe is gone: {err}"
            ) from err
        started = time.monotonic()
        while True:
            budget = heartbeat_timeout
            if deadline is not None:
                remaining = deadline - (time.monotonic() - started)
                if remaining <= 0:
                    raise RunTimeout(
                        f"worker {self.worker_id} exceeded the "
                        f"{deadline:g}s unit timeout on {spec.describe()} "
                        f"({self.heartbeats_seen} heartbeat(s) seen) and "
                        "was killed"
                    )
                budget = min(budget, remaining)
            try:
                frame = self._reader.read(budget)
            except FrameTimeout:
                raise WorkerHang(
                    f"worker {self.worker_id} went silent for "
                    f"{budget:g}s mid-unit ({spec.describe()}): no "
                    f"heartbeat, no result"
                ) from None
            except WorkerCrash as err:
                code = self.proc.poll()
                raise WorkerCrash(
                    f"worker {self.worker_id} died mid-unit "
                    f"({spec.describe()}), exit code {code}: {err}"
                ) from None
            kind = frame.get("type")
            if kind == "heartbeat":
                self.heartbeats_seen += 1
                continue
            if kind == "log":
                # Structured event-log forwarding (campaign/unit/worker
                # correlation IDs attached worker-side); never fatal.
                events = frame.get("events")
                self.logs_seen += 1
                if self.on_log is not None and isinstance(events, list):
                    self.on_log(events)
                continue
            if kind == "error":
                if frame.get("id") != request_id:
                    raise ProtocolDesync(
                        f"worker {self.worker_id} answered request "
                        f"{frame.get('id')!r}, expected {request_id}"
                    )
                err = ReproError(
                    str(frame.get("message", "(no message)")),
                    diagnostics=frame.get("diagnostics"),
                )
                err.code = str(frame.get("code", "worker-crash"))
                self.units_served += 1
                raise err
            if kind == "result":
                if frame.get("id") != request_id:
                    raise ProtocolDesync(
                        f"worker {self.worker_id} answered request "
                        f"{frame.get('id')!r}, expected {request_id}"
                    )
                try:
                    record = record_from_dict(frame["record"])
                except (KeyError, ReproError) as err:
                    raise ProtocolDesync(
                        f"worker {self.worker_id} returned an unreadable "
                        f"record for {spec.describe()}: {err}"
                    ) from err
                self.units_served += 1
                return record
            raise ProtocolDesync(
                f"worker {self.worker_id} sent unexpected frame type "
                f"{kind!r}"
            )

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: shutdown frame, wait, then escalate to kill."""
        if self.proc is None:
            return
        if self.alive:
            try:
                write_frame(self.proc.stdin, {"type": "shutdown"})
                self.proc.stdin.close()
            except (BrokenPipeError, OSError):
                pass
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()
                return
        self._close_pipes()

    def kill(self) -> None:
        """Hard stop (SIGKILL); safe to call repeatedly."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                self.proc.kill()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
        self._close_pipes()

    def _close_pipes(self) -> None:
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _serve_unit(out, frame: dict) -> None:
    """Simulate one run frame and answer with a result or error frame."""
    from repro.experiments.faults import apply_pool_fault
    from repro.experiments.runner import Runner
    from repro.scor.apps.registry import app_by_name

    request_id = frame.get("id")
    try:
        spec = RunSpec.from_dict(frame["spec"])
    except (KeyError, ReproError) as err:
        write_frame(out, {
            "type": "error", "id": request_id,
            "code": "config", "message": f"bad spec: {err}",
        })
        return

    beat_every = float(frame.get("heartbeat", DEFAULT_HEARTBEAT_SECONDS))
    deadline = frame.get("deadline")
    campaign = frame.get("campaign")

    def log_event(event: str, **fields) -> None:
        """Forward one structured event with correlation IDs attached."""
        entry = {
            "event": event,
            "campaign": campaign,
            "unit": spec.describe(),
            "worker_pid": os.getpid(),
            "request_id": request_id,
        }
        entry.update(fields)
        write_frame(out, {
            "type": "log", "id": request_id, "events": [entry],
        })

    def on_heartbeat(beat):
        # Called from inside the event loop — same thread, so frame
        # writes never interleave with the result frame.
        write_frame(out, {
            "type": "heartbeat", "id": request_id,
            "elapsed": round(beat.elapsed_seconds, 3),
            "events": beat.events_processed,
            "cycle": beat.cycle,
        })

    def guard_factory():
        return Watchdog(
            GuardConfig(
                deadline_seconds=float(deadline) if deadline else None,
                heartbeat_seconds=beat_every,
            ),
            on_heartbeat=on_heartbeat,
        )

    flight = None
    if frame.get("flight"):
        from repro.telemetry.flight import FlightConfig

        flight = FlightConfig.from_dict(frame["flight"])

    try:
        # Injected faults strike after the unit is dispatched — exactly
        # where a real mid-unit SIGKILL / hang / desync would.
        apply_pool_fault(frame.get("fault"), out, request_id, beat_every)
        log_event("unit-start", detector=spec.detector, seed=spec.seed)
        # A fresh Runner per unit: the warm worker's Nth unit sees the
        # same state a cold subprocess would (determinism parity).
        runner = Runner(
            verbose=False,
            guard_factory=guard_factory,
            flight=flight,
            forensics_dir=frame.get("forensics_dir"),
        )
        record = runner.run(
            app_by_name(spec.app),
            detector=spec.detector,
            memory=spec.memory,
            races=spec.races,
            seed=spec.seed,
        )
    except ReproError as err:
        write_frame(out, {
            "type": "error", "id": request_id,
            "code": err.code, "message": str(err),
            "diagnostics": err.diagnostics,
        })
        return
    except KeyError as err:
        write_frame(out, {
            "type": "error", "id": request_id,
            "code": "config", "message": str(err),
        })
        return
    except Exception as err:  # noqa: BLE001 - isolation is the point
        write_frame(out, {
            "type": "error", "id": request_id,
            "code": "worker-crash",
            "message": f"{type(err).__name__}: {err}",
        })
        return
    for entry in runner.forensics_units:
        log_event("forensics-unit", forensics_unit=entry)
    log_event(
        "unit-complete",
        unique_races=record.unique_races,
        race_types=sorted(t.value for t in record.race_types),
        bundles=sum(e["bundles"] for e in runner.forensics_units),
    )
    write_frame(out, {
        "type": "result", "id": request_id,
        "record": record_to_dict(record),
    })


def worker_main(argv=None) -> int:
    """``python -m repro.experiments.pool``: serve units until shutdown.

    Boot sequence: claim the real stdout for frames (anything the
    engine might ``print`` is re-routed to stderr so it can never
    desync the pipe), pre-import the engine, announce ``ready``.  Then
    loop: read a frame, serve it, answer.  EOF or a ``shutdown`` frame
    ends the loop cleanly.
    """
    out = sys.stdout.buffer
    inp = sys.stdin.buffer
    # Stray prints must never corrupt the frame stream.
    sys.stdout = sys.stderr

    # Pre-import: this is the cost the pool pays once instead of
    # per-unit.  Everything a simulation touches is pulled in here.
    import repro.experiments.runner  # noqa: F401
    import repro.scor.apps.registry  # noqa: F401
    import repro.scor.micro.registry  # noqa: F401

    write_frame(out, {
        "type": "ready",
        "protocol": POOL_PROTOCOL,
        "pid": os.getpid(),
    })

    while True:
        try:
            frame = read_frame(inp)
        except ProtocolDesync as err:
            print(f"[pool-worker] desynced stdin: {err}", file=sys.stderr)
            return 1
        if frame is None or frame.get("type") == "shutdown":
            return 0
        if frame.get("type") != "run":
            write_frame(out, {
                "type": "error", "id": frame.get("id"),
                "code": "config",
                "message": f"unexpected frame type {frame.get('type')!r}",
            })
            continue
        _serve_unit(out, frame)


if __name__ == "__main__":
    sys.exit(worker_main())
