"""Wire formats for scord-serve: submission and report schemas.

Two stamped document types cross the wire (mirroring the repo's other
report schemas — ``scolint-report/v1``, ``fuzz-report/v1``,
``mc-report/v1``):

``service-job/v1``
    Both the submission body of ``POST /v1/jobs`` and the status
    document returned by ``POST /v1/jobs`` (202) and
    ``GET /v1/jobs/{id}`` (200).

``service-report/v1``
    The full result document from ``GET /v1/jobs/{id}/report``.

Errors are uniform JSON envelopes ``{"error": {"code", "message", ...}}``
with machine-stable codes (:data:`ERROR_CODES`).  Validation here is
deliberately strict and synchronous: a submission either parses into
plain typed values (unit specs / a fuzz program) or raises
:class:`ServiceError` with the HTTP status the daemon should answer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

JOB_SCHEMA = "service-job/v1"
REPORT_SCHEMA = "service-report/v1"

#: machine-stable error codes -> the HTTP status they ride on.
#: Documented one-for-one in docs/service.md ("Error codes").
ERROR_CODES = {
    "malformed-json": 400,
    "bad-request": 400,
    "unknown-job": 404,
    "not-found": 404,
    "method-not-allowed": 405,
    "static-race": 422,
    "quota-exceeded": 429,
    "internal": 500,
    "draining": 503,
}

#: hard ceiling on units per submission regardless of quota state
MAX_UNITS_PER_JOB = 4096


class ServiceError(Exception):
    """A request the daemon must refuse, with its HTTP mapping."""

    def __init__(self, code: str, message: str, detail: Optional[dict] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown service error code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]
        self.message = message
        self.detail = detail or {}

    def to_dict(self) -> dict:
        body = {"code": self.code, "message": self.message}
        body.update(self.detail)
        return {"error": body}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError("bad-request", message)


def parse_unit(payload, index: int):
    """One campaign unit dict -> a :class:`RunSpec`, validated."""
    from repro.experiments.campaign import SPEC_SCHEMA, RunSpec
    from repro.experiments.runner import DETECTORS, MEMORY_PRESETS
    from repro.scor.apps.registry import ALL_APPS

    _require(
        isinstance(payload, dict), f"units[{index}] must be an object"
    )
    known_apps = {app.name for app in ALL_APPS}
    app = payload.get("app")
    _require(
        isinstance(app, str) and app in known_apps,
        f"units[{index}].app must be one of {sorted(known_apps)}",
    )
    detector = payload.get("detector", "scord")
    _require(
        detector in DETECTORS,
        f"units[{index}].detector must be one of {sorted(DETECTORS)}",
    )
    memory = payload.get("memory", "default")
    _require(
        memory in MEMORY_PRESETS,
        f"units[{index}].memory must be one of {list(MEMORY_PRESETS)}",
    )
    races = payload.get("races", [])
    _require(
        isinstance(races, list)
        and all(isinstance(r, str) for r in races),
        f"units[{index}].races must be a list of strings",
    )
    seed = payload.get("seed", 1)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        f"units[{index}].seed must be an integer",
    )
    # Reuse the spec schema's own constructor so the service accepts
    # exactly what the offline campaign runs.
    return RunSpec.from_dict(
        {
            "schema": SPEC_SCHEMA,
            "app": app,
            "detector": detector,
            "memory": memory,
            "races": sorted(races),
            "seed": seed,
        }
    )


def parse_program(payload: dict):
    """A ``fuzz-program/v1`` body -> (program, seeds, detector)."""
    from repro.experiments.runner import DETECTORS
    from repro.fuzz.oracles import DEFAULT_SEEDS
    from repro.fuzz.program import FuzzProgram, ProgramError

    _require(
        isinstance(payload.get("program"), dict),
        "program must be a fuzz-program/v1 object",
    )
    try:
        program = FuzzProgram.from_dict(payload["program"])
    except (ProgramError, KeyError, TypeError, ValueError) as err:
        raise ServiceError(
            "bad-request", f"program does not parse: {err}"
        ) from None
    seeds = payload.get("seeds", list(DEFAULT_SEEDS))
    _require(
        isinstance(seeds, list)
        and seeds
        and all(
            isinstance(s, int) and not isinstance(s, bool) for s in seeds
        ),
        "seeds must be a non-empty list of integers",
    )
    detector = payload.get("detector", "scord")
    _require(
        detector in DETECTORS,
        f"detector must be one of {sorted(DETECTORS)}",
    )
    return program, tuple(seeds), detector


def parse_submission(payload) -> dict:
    """Validate a ``POST /v1/jobs`` body into plain typed fields.

    Returns ``{"kind": "campaign", "specs": [RunSpec, ...]}`` or
    ``{"kind": "program", "program": FuzzProgram, "seeds": (...),
    "detector": str, "on_static_race": "reject"|"accept"}``.
    """
    _require(isinstance(payload, dict), "submission must be a JSON object")
    schema = payload.get("schema")
    _require(
        schema == JOB_SCHEMA,
        f"schema must be {JOB_SCHEMA!r} (got {schema!r})",
    )
    has_units = "units" in payload
    has_program = "program" in payload
    _require(
        has_units != has_program,
        "submission must carry exactly one of 'units' or 'program'",
    )
    if has_units:
        units = payload["units"]
        _require(
            isinstance(units, list) and units,
            "units must be a non-empty list",
        )
        _require(
            len(units) <= MAX_UNITS_PER_JOB,
            f"units exceeds the per-job ceiling ({MAX_UNITS_PER_JOB})",
        )
        specs = [parse_unit(unit, i) for i, unit in enumerate(units)]
        return {"kind": "campaign", "specs": specs}
    program, seeds, detector = parse_program(payload)
    on_static_race = payload.get("on_static_race", "reject")
    _require(
        on_static_race in ("reject", "accept"),
        "on_static_race must be 'reject' or 'accept'",
    )
    return {
        "kind": "program",
        "program": program,
        "seeds": seeds,
        "detector": detector,
        "on_static_race": on_static_race,
    }


def client_name(header_value: Optional[str], payload) -> str:
    """Resolve the client identity: header first, then body field."""
    if header_value:
        name = header_value.strip()
        if name:
            _require(len(name) <= 128, "client name too long (max 128)")
            return name
    if isinstance(payload, dict):
        name = payload.get("client")
        if isinstance(name, str) and name.strip():
            _require(len(name) <= 128, "client name too long (max 128)")
            return name.strip()
    return "anonymous"
