"""Per-client token-bucket quotas for scord-serve.

Each client gets one bucket: ``capacity`` tokens, refilled continuously
at ``refill_per_s``.  Every *simulation unit* in a submission costs one
token, charged atomically at submission time — a job is admitted whole
or refused whole (HTTP 429 with ``retry_after_seconds``), never half
enqueued.  Cache hits are charged like any other unit: quota protects
the *front door* (request admission), fairness at the backend comes
from the round-robin scheduler in :mod:`repro.service.jobs`.

The clock is injectable so tests exercise refill deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict


class TokenBucket:
    """A continuously-refilled token bucket (thread-safe)."""

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.refill_per_s
        )

    def try_charge(self, amount: float) -> bool:
        """Atomically take *amount* tokens; False if not enough."""
        with self._lock:
            self._refill()
            if self._tokens + 1e-9 < amount:
                return False
            self._tokens -= amount
            return True

    def retry_after(self, amount: float) -> float:
        """Seconds until *amount* tokens will be available (0 if now)."""
        with self._lock:
            self._refill()
            missing = amount - self._tokens
            if missing <= 0:
                return 0.0
            if self.refill_per_s == 0:
                return float("inf")
            return missing / self.refill_per_s

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class QuotaManager:
    """Lazily-created per-client buckets with shared parameters."""

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.capacity, self.refill_per_s, clock=self._clock
                )
                self._buckets[client] = bucket
            return bucket

    def charge(self, client: str, units: int) -> float:
        """Charge *units* tokens; returns 0.0 on success, else the
        suggested retry-after delay in seconds (> 0)."""
        bucket = self.bucket(client)
        if bucket.try_charge(units):
            return 0.0
        return max(bucket.retry_after(units), 0.001)

    def snapshot(self) -> Dict[str, float]:
        """Remaining tokens per known client (for /healthz)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {name: bucket.tokens for name, bucket in buckets.items()}
