"""scord-serve: race-checking as a service.

A long-lived, stdlib-only HTTP/JSON daemon that turns the repository's
offline campaign machinery into a multi-tenant front door:

- submissions are either **campaign units** (the same ``RunSpec`` shape
  ``scord-experiments`` runs offline) or **kernel-DSL programs**
  (``fuzz-program/v1``, the fuzzer's serializable IR);
- scolint runs as a synchronous preflight — statically-racy program
  submissions are rejected at the door with the rule verdict (HTTP 422)
  unless the client explicitly opts in to running them anyway;
- accepted units are batched into shards and drained by dispatcher
  threads feeding ONE shared :class:`~repro.experiments.supervisor.PoolSupervisor`
  (the PR 4 warm-worker pool), so the simulation backend stays saturated
  under concurrent clients instead of re-spawning per request;
- the PR 2 content-addressed :class:`~repro.experiments.parallel.ResultCache`
  is the shared store — identical submissions from different clients are
  cache hits, and concurrent identical units coalesce onto one execution;
- multi-tenancy comes from per-client token-bucket quotas (HTTP 429)
  and fair round-robin scheduling across clients' shard queues;
- every request gets a trace span and ``service.*`` metrics on the
  shared PR 3/PR 8 telemetry bundle, exported at ``GET /metrics`` in
  Prometheus text format.

Endpoints (see ``docs/service.md`` for schemas and worked examples)::

    POST /v1/jobs             submit a job            -> 202 service-job/v1
    GET  /v1/jobs/{id}        poll job status         -> 200 service-job/v1
    GET  /v1/jobs/{id}/report full results            -> 200 service-report/v1
    GET  /v1/jobs/{id}/report?stream=1   NDJSON unit results as they land
    GET  /healthz             liveness + drain state
    GET  /metrics             Prometheus 0.0.4 text exposition

The package splits along the collector -> detector -> alerter seam:
:mod:`repro.service.schemas` (wire formats + validation),
:mod:`repro.service.quota` (token buckets),
:mod:`repro.service.jobs` (job manager: preflight, fair scheduler,
coalescing, dispatchers), :mod:`repro.service.daemon` (the HTTP layer
and drain choreography), and :mod:`repro.service.cli` (``scord-experiments
serve``).
"""

from repro.service.schemas import (  # noqa: F401
    ERROR_CODES,
    JOB_SCHEMA,
    REPORT_SCHEMA,
    ServiceError,
)
from repro.service.quota import QuotaManager, TokenBucket  # noqa: F401
from repro.service.jobs import Job, JobManager, ServiceConfig  # noqa: F401
from repro.service.daemon import ServiceDaemon  # noqa: F401

__all__ = [
    "ERROR_CODES",
    "JOB_SCHEMA",
    "REPORT_SCHEMA",
    "Job",
    "JobManager",
    "QuotaManager",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "TokenBucket",
]
