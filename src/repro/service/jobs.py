"""The scord-serve job manager: admission, scheduling, execution.

One :class:`JobManager` owns the daemon's entire backend:

- **Admission** (:meth:`JobManager.submit`): parse + validate the body
  (:mod:`repro.service.schemas`), run the scolint preflight on program
  submissions (statically-racy programs are refused with the rule
  verdict unless ``on_static_race: "accept"``), charge the client's
  token bucket one token per simulation unit (all-or-nothing, 429 on
  insufficient tokens), then batch the units into shards on the
  client's queue.
- **Fair scheduling**: dispatcher threads drain shards round-robin
  *across clients*, so one client's 4 000-unit campaign cannot starve
  another's 6-unit smoke test; within a client, shards run in FIFO
  order.
- **Execution**: campaign units go through the shared
  :class:`~repro.experiments.supervisor.PoolSupervisor` — exactly the
  executor the offline CLI uses, so service records are identical to
  offline records.  The content-addressed
  :class:`~repro.experiments.parallel.ResultCache` is consulted first,
  and concurrent identical units *coalesce*: the first arrival
  executes, everyone else waits on its result.  Program units run the
  fuzzer's dynamic oracle (one schedule-jitter seed per unit) with an
  in-memory content-addressed cache keyed the same way
  (:func:`repro.fuzz.program.fuzz_unit_digest`).
- **Durability**: fresh records append to the campaign
  :class:`~repro.experiments.store.RunStore` (fsync'd JSONL) and the
  result cache, parent-side, under one lock — the same discipline as
  the parallel campaign executor.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
import uuid
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import RunFailedError
from repro.service.quota import QuotaManager
from repro.service.schemas import (
    JOB_SCHEMA,
    REPORT_SCHEMA,
    ServiceError,
    parse_submission,
)


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``scord-experiments serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: persistent warm workers behind the shared PoolSupervisor
    workers: int = 2
    #: shard queues drained concurrently (parallelism across shards)
    dispatchers: int = 2
    #: units per shard — the request-batching grain
    shard_size: int = 8
    #: durable JSONL run store (None = memory only)
    store_path: Optional[str] = None
    #: content-addressed result cache root (None = no cross-restart cache)
    cache_dir: Optional[str] = None
    #: per-client token bucket: capacity and refill rate (tokens/second)
    quota_units: float = 256.0
    quota_refill_per_s: float = 4.0
    #: per-unit wall-clock timeout inside the pool
    unit_timeout: Optional[float] = None
    #: write per-unit forensics bundles under this directory
    forensics_dir: Optional[str] = None
    verbose: bool = False


class _Inflight:
    """Coalescing slot: first arrival executes, the rest wait."""

    def __init__(self):
        self.event = threading.Event()
        self.record = None
        self.verdict = None
        self.failure = None


@dataclasses.dataclass
class Job:
    """One submission's full lifecycle (guarded by the manager lock)."""

    id: str
    client: str
    kind: str  # "campaign" | "program"
    created: float
    specs: List = dataclasses.field(default_factory=list)
    program = None
    seeds: Tuple[int, ...] = ()
    detector: str = "scord"
    static: Optional[dict] = None
    state: str = "queued"  # queued -> running -> done | failed
    results: List[Optional[dict]] = dataclasses.field(default_factory=list)
    units_done: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    finished: Optional[float] = None

    @property
    def units_total(self) -> int:
        return len(self.results)

    def status_dict(self) -> dict:
        doc = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "client": self.client,
            "kind": self.kind,
            "state": self.state,
            "units_total": self.units_total,
            "units_done": self.units_done,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "created": self.created,
            "finished": self.finished,
            "report": f"/v1/jobs/{self.id}/report",
        }
        if self.kind == "program":
            doc["static"] = self.static
            doc["detector"] = self.detector
            doc["seeds"] = list(self.seeds)
        return doc


class JobManager:
    """Admission control, fair scheduling, and unit execution."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        telemetry=None,
        quota_clock=time.monotonic,
    ):
        from repro.experiments.parallel import ResultCache
        from repro.experiments.store import RunStore
        from repro.experiments.supervisor import PoolConfig, PoolSupervisor
        from repro.telemetry import Telemetry

        self.config = config or ServiceConfig()
        self.telemetry = telemetry or Telemetry.disabled()
        self.quotas = QuotaManager(
            self.config.quota_units,
            self.config.quota_refill_per_s,
            clock=quota_clock,
        )
        self.store: Optional[RunStore] = (
            RunStore(self.config.store_path)
            if self.config.store_path
            else None
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        pool_config = PoolConfig(workers=max(1, self.config.workers))
        if self.config.unit_timeout:
            pool_config = dataclasses.replace(
                pool_config, unit_timeout=self.config.unit_timeout
            )
        self.supervisor = PoolSupervisor(
            config=pool_config,
            telemetry=self.telemetry,
            verbose=self.config.verbose,
            forensics_dir=self.config.forensics_dir,
        )
        # -- shared state (all guarded by _lock / signalled on _cond) --
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._shards: Dict[str, Deque[List[Tuple[Job, int]]]] = {}
        self._client_order: List[str] = []
        self._rr_index = 0
        self._pending_shards = 0
        self._active_units = 0
        self._draining = False
        self._stopping = False
        #: coalescing registry: unit digest -> in-flight execution
        self._inflight: Dict[str, _Inflight] = {}
        #: in-memory record cache (memoizes within one daemon lifetime,
        #: and fronts the on-disk ResultCache when one is configured)
        self._record_cache: Dict[str, object] = {}
        self._verdict_cache: Dict[str, dict] = {}
        self._store_lock = threading.Lock()
        # -- service.* metrics (created eagerly: stable exposition) ----
        metrics = self.telemetry.metrics
        self._m_submitted = metrics.counter("service.jobs.submitted")
        self._m_completed = metrics.counter("service.jobs.completed")
        self._m_job_failed = metrics.counter("service.jobs.failed")
        self._m_units = metrics.counter("service.units.total")
        self._m_executed = metrics.counter("service.units.executed")
        self._m_cache_hits = metrics.counter("service.units.cache_hits")
        self._m_coalesced = metrics.counter("service.units.coalesced")
        self._m_unit_failed = metrics.counter("service.units.failed")
        self._m_preflight = metrics.counter("service.preflight.runs")
        self._m_static_reject = metrics.counter(
            "service.rejected", reason="static-race"
        )
        self._m_quota_reject = metrics.counter(
            "service.rejected", reason="quota-exceeded"
        )
        self._g_inflight = metrics.gauge("service.jobs.inflight")
        self._g_clients = metrics.gauge("service.clients")
        self._h_unit = metrics.histogram("service.unit.seconds")
        # -- dispatchers ----------------------------------------------
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"scord-serve-dispatch-{i}",
                daemon=True,
            )
            for i in range(max(1, self.config.dispatchers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, client: str, payload) -> Job:
        """Validate, preflight, charge quota, and enqueue one job."""
        if self._draining or self._stopping:
            raise ServiceError(
                "draining",
                "the daemon is draining and accepts no new jobs",
            )
        parsed = parse_submission(payload)
        if parsed["kind"] == "campaign":
            units = len(parsed["specs"])
            static = None
        else:
            units = len(parsed["seeds"])
            static = self._preflight(parsed)
        retry_after = self.quotas.charge(client, units)
        if retry_after:
            self._m_quota_reject.inc()
            raise ServiceError(
                "quota-exceeded",
                f"client {client!r} lacks quota for {units} unit(s)",
                detail={
                    "units": units,
                    "retry_after_seconds": round(retry_after, 3),
                },
            )
        job = Job(
            id=uuid.uuid4().hex[:12],
            client=client,
            kind=parsed["kind"],
            created=time.time(),
        )
        if parsed["kind"] == "campaign":
            job.specs = parsed["specs"]
            job.results = [None] * units
        else:
            job.program = parsed["program"]
            job.seeds = parsed["seeds"]
            job.detector = parsed["detector"]
            job.static = static
            job.results = [None] * units
        shards = _shard(
            [(job, i) for i in range(units)], self.config.shard_size
        )
        with self._cond:
            self._jobs[job.id] = job
            queue = self._shards.get(client)
            if queue is None:
                queue = collections.deque()
                self._shards[client] = queue
                self._client_order.append(client)
                self._g_clients.set(len(self._client_order))
            queue.extend(shards)
            self._pending_shards += len(shards)
            self._g_inflight.inc()
            self._cond.notify_all()
        self._m_submitted.inc()
        self._m_units.inc(units)
        return job

    def _preflight(self, parsed: dict) -> dict:
        """Synchronous scolint pass over a program submission."""
        from repro.fuzz.oracles import static_verdict

        self._m_preflight.inc()
        with self.telemetry.tracer.span(
            "service.preflight", cat="service"
        ), self.telemetry.profiler.phase("service.preflight"):
            verdict = static_verdict(parsed["program"])
        if verdict["racy"] and parsed["on_static_race"] == "reject":
            self._m_static_reject.inc()
            raise ServiceError(
                "static-race",
                "scolint found statically-detectable races; fix them or "
                "resubmit with on_static_race='accept'",
                detail={"static": verdict},
            )
        return verdict

    # ------------------------------------------------------------------
    # Lookup / reporting
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("unknown-job", f"no job {job_id!r}")
        return job

    def report_dict(self, job: Job) -> dict:
        with self._lock:
            units = [dict(r) if r else None for r in job.results]
            status = job.status_dict()
        failures = [
            unit["failure"]
            for unit in units
            if unit and unit.get("failure")
        ]
        doc = {
            "schema": REPORT_SCHEMA,
            "job": status,
            "units": units,
            "failures": failures,
        }
        if job.kind == "program":
            doc["static"] = job.static
            doc["dynamic"] = _union_verdict(units)
        if self.cache is not None:
            doc["cache"] = self.cache.stats()
        doc["pool"] = self.supervisor.stats()
        forensics = self._forensics_for(job)
        if forensics is not None:
            doc["forensics"] = forensics
        return doc

    def _forensics_for(self, job: Job) -> Optional[List[dict]]:
        if self.config.forensics_dir is None or job.kind != "campaign":
            return None
        from repro.experiments.runner import Runner

        labels = {
            Runner.unit_label(
                s.app, s.detector, s.memory, s.races, s.seed
            )
            for s in job.specs
        }
        return [
            unit
            for unit in self.supervisor.all_forensics_units()
            if unit.get("unit") in labels
        ]

    def iter_unit_results(self, job: Job):
        """Yield unit-result dicts in index order as they complete.

        Blocks between yields until the next unit lands; used by the
        NDJSON streaming report.  Terminates once every unit has been
        yielded (the job is then in a terminal state).
        """
        for index in range(job.units_total):
            with self._cond:
                while job.results[index] is None and not self._stopping:
                    self._cond.wait(timeout=0.5)
                result = job.results[index]
            if result is None:  # manager stopped mid-stream
                return
            yield dict(result)

    # ------------------------------------------------------------------
    # Fair round-robin dispatch
    # ------------------------------------------------------------------
    def _next_shard(self) -> Optional[List[Tuple[Job, int]]]:
        """Pop the next shard, rotating fairly across clients."""
        order = self._client_order
        if not order:
            return None
        for step in range(len(order)):
            client = order[(self._rr_index + step) % len(order)]
            queue = self._shards.get(client)
            if queue:
                self._rr_index = (self._rr_index + step + 1) % len(order)
                self._pending_shards -= 1
                return queue.popleft()
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                shard = self._next_shard()
                while shard is None and not self._stopping:
                    self._cond.wait(timeout=0.5)
                    shard = self._next_shard()
                if shard is None:
                    return
                self._active_units += len(shard)
                for job, _ in shard:
                    if job.state == "queued":
                        job.state = "running"
            try:
                for job, index in shard:
                    self._run_unit(job, index)
            finally:
                with self._cond:
                    self._active_units -= len(shard)
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------
    def _run_unit(self, job: Job, index: int) -> None:
        started = time.monotonic()
        try:
            if job.kind == "campaign":
                result = self._run_campaign_unit(job, job.specs[index])
            else:
                result = self._run_program_unit(job, job.seeds[index])
        except Exception as err:  # never kill a dispatcher thread
            result = {
                "unit": f"{job.id}[{index}]",
                "kind": job.kind,
                "source": "error",
                "failure": {
                    "category": "internal",
                    "message": f"{type(err).__name__}: {err}",
                },
            }
        result["seconds"] = round(time.monotonic() - started, 6)
        self._h_unit.observe(result["seconds"])
        with self._cond:
            job.results[index] = result
            job.units_done += 1
            if result.get("failure"):
                job.failed += 1
                self._m_unit_failed.inc()
            elif result["source"] in ("cache", "coalesced"):
                job.cache_hits += 1
            else:
                job.executed += 1
            if job.units_done == job.units_total:
                job.state = "failed" if job.failed else "done"
                job.finished = time.time()
                self._g_inflight.inc(-1)
                if job.failed:
                    self._m_job_failed.inc()
                else:
                    self._m_completed.inc()
            self._cond.notify_all()

    def _run_campaign_unit(self, job: Job, spec) -> dict:
        from repro.experiments.store import record_to_dict, unit_digest

        digest = unit_digest(
            spec.app, spec.detector, spec.memory, spec.races, spec.seed
        )
        label = spec.describe()
        base = {
            "unit": label,
            "kind": "campaign",
            "spec": spec.to_dict(),
            "digest": digest,
            "failure": None,
        }
        record, source = self._cached_record(spec, digest)
        if record is not None:
            self._m_cache_hits.inc()
            return dict(base, source=source, record=record_to_dict(record))
        slot, owner = self._claim(digest)
        if not owner:
            slot.event.wait()
            if slot.failure is not None:
                return dict(base, source="coalesced", failure=slot.failure)
            self._m_coalesced.inc()
            return dict(
                base,
                source="coalesced",
                record=record_to_dict(slot.record),
            )
        try:
            with self.telemetry.tracer.span(
                "service.unit", cat="service", unit=label, client=job.client
            ), self.telemetry.profiler.phase("service.unit"):
                record = self.supervisor.execute(spec)
        except RunFailedError as err:
            failure = getattr(err, "failure", None)
            slot.failure = (
                failure.to_dict()
                if failure is not None
                else {"category": err.code, "message": str(err)}
            )
            return dict(base, source="executed", failure=slot.failure)
        except Exception as err:
            slot.failure = {
                "category": "internal",
                "message": f"{type(err).__name__}: {err}",
            }
            return dict(base, source="executed", failure=slot.failure)
        else:
            self._persist(digest, record)
            slot.record = record
            self._m_executed.inc()
            return dict(base, source="executed", record=record_to_dict(record))
        finally:
            slot.event.set()
            with self._lock:
                self._inflight.pop(digest, None)

    def _run_program_unit(self, job: Job, seed: int) -> dict:
        from repro.fuzz.oracles import dynamic_verdict
        from repro.fuzz.program import fuzz_unit_digest, program_digest

        digest = fuzz_unit_digest(job.program, job.detector, seed)
        label = f"program:{program_digest(job.program)[:12]}.s{seed}"
        base = {
            "unit": label,
            "kind": "program",
            "seed": seed,
            "detector": job.detector,
            "digest": digest,
            "failure": None,
        }
        with self._lock:
            verdict = self._verdict_cache.get(digest)
        if verdict is not None:
            self._m_cache_hits.inc()
            return dict(base, source="cache", verdict=dict(verdict))
        slot, owner = self._claim(digest)
        if not owner:
            slot.event.wait()
            if slot.failure is not None:
                return dict(base, source="coalesced", failure=slot.failure)
            self._m_coalesced.inc()
            return dict(
                base, source="coalesced", verdict=dict(slot.verdict)
            )
        try:
            with self.telemetry.tracer.span(
                "service.unit", cat="service", unit=label, client=job.client
            ), self.telemetry.profiler.phase("service.unit"):
                verdict = dynamic_verdict(
                    job.program, seeds=(seed,), detector=job.detector
                )
        except Exception as err:
            slot.failure = {
                "category": "simulation",
                "message": f"{type(err).__name__}: {err}",
            }
            return dict(base, source="executed", failure=slot.failure)
        else:
            with self._lock:
                self._verdict_cache[digest] = verdict
            slot.verdict = verdict
            self._m_executed.inc()
            return dict(base, source="executed", verdict=dict(verdict))
        finally:
            slot.event.set()
            with self._lock:
                self._inflight.pop(digest, None)

    def _claim(self, digest: str) -> Tuple[_Inflight, bool]:
        """Register as the executor for *digest*, or join the wait."""
        with self._lock:
            slot = self._inflight.get(digest)
            if slot is not None:
                return slot, False
            slot = _Inflight()
            self._inflight[digest] = slot
            return slot, True

    def _cached_record(self, spec, digest: str):
        """(record, source) from memory or disk cache; (None, None) miss."""
        with self._lock:
            record = self._record_cache.get(digest)
        if record is not None:
            return record, "cache"
        if self.cache is not None:
            record = self.cache.get_spec(spec)
            if record is not None:
                with self._lock:
                    self._record_cache[digest] = record
                return record, "cache"
        return None, None

    def _persist(self, digest: str, record) -> None:
        """Durably record one fresh result (store + caches)."""
        with self._store_lock:
            if self.store is not None:
                self.store.append(record)
            if self.cache is not None:
                self.cache.put(record)
        with self._lock:
            self._record_cache[digest] = record

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new jobs, let in-flight work finish, then shut down.

        Returns True when every accepted job reached a terminal state
        within *timeout* seconds (None = wait indefinitely).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            self._draining = True
            while self._pending_shards or self._active_units:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(timeout=remaining)
            drained = not (self._pending_shards or self._active_units)
        self.close()
        return drained

    def close(self) -> None:
        """Stop dispatchers and the worker pool (idempotent)."""
        with self._cond:
            if self._stopping:
                return
            self._draining = True
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=10)
        self.supervisor.close()

    def stats(self) -> dict:
        """Live operational snapshot (rendered by /healthz)."""
        with self._lock:
            jobs = list(self._jobs.values())
            pending = self._pending_shards
            active = self._active_units
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": len(jobs),
            "states": states,
            "pending_shards": pending,
            "active_units": active,
            "draining": self._draining,
            "quota": self.quotas.snapshot(),
            "pool": self.supervisor.stats(),
            "cache": self.cache.stats() if self.cache else None,
        }


def _shard(units: Sequence, size: int) -> List[List]:
    size = max(1, size)
    return [
        list(units[start:start + size])
        for start in range(0, len(units), size)
    ]


def _union_verdict(units: List[Optional[dict]]) -> dict:
    """Union a program job's per-seed verdicts (the seed-sweep rule)."""
    racy = False
    types: set = set()
    seeds_done = []
    for unit in units:
        if not unit or unit.get("failure") or "verdict" not in unit:
            continue
        verdict = unit["verdict"]
        racy = racy or bool(verdict.get("racy"))
        types.update(verdict.get("types", ()))
        seeds_done.append(unit.get("seed"))
    return {
        "racy": racy,
        "types": sorted(types),
        "seeds": sorted(s for s in seeds_done if s is not None),
    }
