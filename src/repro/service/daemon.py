"""The scord-serve HTTP layer: routing, drain choreography, signals.

A :class:`ServiceDaemon` wraps one :class:`~repro.service.jobs.JobManager`
behind a stdlib ``ThreadingHTTPServer``.  The handler is deliberately
thin: parse the route, hand the body to the manager, serialize the
answer — every policy decision (validation, preflight, quota, fairness)
lives in :mod:`repro.service.jobs` where the contract tests can reach
it without a socket.

Routes::

    POST /v1/jobs                    submit            202 / 4xx / 503
    GET  /v1/jobs/{id}               status            200 / 404
    GET  /v1/jobs/{id}/report        full report       200 / 404
    GET  /v1/jobs/{id}/report?stream=1   NDJSON stream 200 / 404
    GET  /healthz                    liveness + drain state
    GET  /metrics                    Prometheus 0.0.4 text

Draining: ``SIGTERM`` (or :meth:`ServiceDaemon.drain`) flips the daemon
to *draining* — ``POST /v1/jobs`` answers 503 ``draining``, ``/healthz``
reports ``"state": "draining"``, in-flight jobs run to completion, the
run store is flushed (every append already fsyncs), the worker pool
shuts down, and the listener closes.  Status and report endpoints stay
up until the listener closes so clients can collect results.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobManager, ServiceConfig
from repro.service.schemas import ServiceError

#: request bodies above this are refused outright (64 MiB)
MAX_BODY_BYTES = 64 * 1024 * 1024

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.daemon`` (a ServiceDaemon)."""

    # Close-delimited streaming bodies need HTTP/1.0 semantics; every
    # non-streaming response carries an explicit Content-Length anyway.
    protocol_version = "HTTP/1.0"

    # -- plumbing ------------------------------------------------------
    @property
    def daemon(self) -> "ServiceDaemon":
        return self.server.daemon  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002
        if self.daemon.manager.config.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: ServiceError) -> None:
        payload = error.to_dict()
        retry = payload["error"].get("retry_after_seconds")
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(error.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry is not None:
            self.send_header("Retry-After", str(max(1, int(retry + 0.5))))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                "bad-request", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServiceError(
                "malformed-json", f"body is not valid JSON: {err}"
            ) from None

    # -- verbs ---------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def _dispatch(self, method: str) -> None:
        daemon = self.daemon
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        started = time.monotonic()
        telemetry = daemon.manager.telemetry
        status = 500
        try:
            with telemetry.tracer.span(
                "service.request", cat="service", method=method, path=route
            ):
                status = self._route(method, route, url)
        except ServiceError as err:
            status = err.status
            self._send_error(err)
        except BrokenPipeError:
            status = 499  # client went away mid-response
        except Exception as err:  # pragma: no cover - last resort
            status = 500
            try:
                self._send_error(
                    ServiceError(
                        "internal", f"{type(err).__name__}: {err}"
                    )
                )
            except OSError:
                pass
        finally:
            telemetry.metrics.counter(
                "service.requests", method=method, status=str(status)
            ).inc()
            telemetry.metrics.histogram("service.request.seconds").observe(
                time.monotonic() - started
            )

    # -- routing -------------------------------------------------------
    def _route(self, method: str, route: str, url) -> int:
        manager = self.daemon.manager
        if route == "/healthz":
            if method != "GET":
                raise ServiceError(
                    "method-not-allowed", f"{method} not allowed here"
                )
            return self._healthz()
        if route == "/metrics":
            if method != "GET":
                raise ServiceError(
                    "method-not-allowed", f"{method} not allowed here"
                )
            return self._metrics()
        if route == "/v1/jobs":
            if method != "POST":
                raise ServiceError(
                    "method-not-allowed", "use POST /v1/jobs to submit"
                )
            return self._submit()
        if route.startswith("/v1/jobs/"):
            if method != "GET":
                raise ServiceError(
                    "method-not-allowed", f"{method} not allowed here"
                )
            rest = route[len("/v1/jobs/"):]
            if rest.endswith("/report"):
                job = manager.job(rest[: -len("/report")])
                query = parse_qs(url.query)
                if query.get("stream", ["0"])[0] in ("1", "true"):
                    return self._stream_report(job)
                self._send_json(200, manager.report_dict(job))
                return 200
            job = manager.job(rest)
            self._send_json(200, job.status_dict())
            return 200
        raise ServiceError("not-found", f"no route {method} {route}")

    def _submit(self) -> int:
        from repro.service.schemas import client_name

        payload = self._read_body()
        client = client_name(self.headers.get("X-Scord-Client"), payload)
        job = self.daemon.manager.submit(client, payload)
        self._send_json(202, job.status_dict())
        return 202

    def _healthz(self) -> int:
        manager = self.daemon.manager
        stats = manager.stats()
        self._send_json(
            200,
            {
                "ok": True,
                "state": "draining" if manager.draining else "serving",
                "uptime_seconds": round(self.daemon.uptime(), 3),
                **stats,
            },
        )
        return 200

    def _metrics(self) -> int:
        text = self.daemon.manager.telemetry.metrics.to_prometheus()
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return 200

    def _stream_report(self, job) -> int:
        """NDJSON: status line, one line per unit as it lands, summary."""
        manager = self.daemon.manager
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

        def line(doc: dict) -> None:
            self.wfile.write((json.dumps(doc) + "\n").encode())
            self.wfile.flush()

        line(job.status_dict())
        for unit in manager.iter_unit_results(job):
            line(unit)
        line({"done": True, **job.status_dict()})
        return 200


class ServiceDaemon:
    """One listener + one JobManager + the drain choreography."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        telemetry=None,
        manager: Optional[JobManager] = None,
    ):
        self.config = config or ServiceConfig()
        self.manager = manager or JobManager(
            self.config, telemetry=telemetry
        )
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._server.daemon_threads = True
        self._server.daemon = self  # type: ignore[attr-defined]
        self._started = time.monotonic()
        self._serve_thread: Optional[threading.Thread] = None
        self._drained = threading.Event()

    # -- addresses -----------------------------------------------------
    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def uptime(self) -> float:
        return time.monotonic() - self._started

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServiceDaemon":
        """Serve in a background thread (tests and embedding)."""
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="scord-serve-listener",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, install_signals: bool = True) -> None:
        """Serve on the calling thread until SIGTERM/SIGINT drains us."""
        if install_signals:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        try:
            self._server.serve_forever()
        finally:
            self._drained.wait(timeout=1)

    def _on_signal(self, signum, frame) -> None:
        # Handlers must return fast: drain on a helper thread, which
        # stops the serve_forever loop once the backend is quiet.
        threading.Thread(
            target=self.drain, name="scord-serve-drain", daemon=True
        ).start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: 503 new work, finish in-flight, stop."""
        drained = self.manager.drain(timeout=timeout)
        self._server.shutdown()
        self._server.server_close()
        self._drained.set()
        return drained

    def close(self) -> None:
        """Hard stop (tests): no waiting beyond in-flight shards."""
        self.manager.close()
        self._server.shutdown()
        self._server.server_close()
        self._drained.set()
