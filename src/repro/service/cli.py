"""``scord-experiments serve`` — boot the race-checking daemon.

Flags mirror the offline campaign CLI where the concept is shared
(``--store``, ``--cache-dir``, ``--jobs``, ``--trace``,
``--forensics-out``) so an operator can point the daemon at the same
artifacts the batch runs produce.  See docs/service.md for the
endpoint reference and operations guide.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scord-experiments serve",
        description="Serve race-checking over HTTP: submit campaign "
        "units or kernel-DSL programs, poll job status, stream "
        "reports (see docs/service.md).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 = pick an ephemeral port; default 8787)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="persistent warm workers behind the shared pool "
        "(default 2)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=2, metavar="N",
        help="shard queues drained concurrently (default 2)",
    )
    parser.add_argument(
        "--shard-size", type=int, default=8, metavar="N",
        help="units batched per campaign shard (default 8)",
    )
    parser.add_argument(
        "--store", metavar="PATH",
        help="durably append every fresh record to this JSONL run store",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache shared with offline runs",
    )
    parser.add_argument(
        "--quota-units", type=float, default=256.0, metavar="N",
        help="per-client token-bucket capacity, one token per unit "
        "(default 256)",
    )
    parser.add_argument(
        "--quota-refill", type=float, default=4.0, metavar="PER_S",
        help="per-client bucket refill rate in tokens/second (default 4)",
    )
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-unit wall-clock timeout inside the pool",
    )
    parser.add_argument(
        "--forensics-out", metavar="DIR",
        help="write per-unit forensics bundles under DIR",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-request trace spans (exported on drain as "
        "chrome-trace next to --store, when set)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log every request line to stderr",
    )
    return parser


def serve_main(argv: Optional[list] = None) -> int:
    from repro.service.daemon import ServiceDaemon
    from repro.service.jobs import ServiceConfig
    from repro.telemetry import Telemetry, TraceConfig

    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.dispatchers < 1:
        parser.error("--dispatchers must be >= 1")
    if args.shard_size < 1:
        parser.error("--shard-size must be >= 1")
    if args.quota_units <= 0:
        parser.error("--quota-units must be > 0")
    if args.quota_refill < 0:
        parser.error("--quota-refill must be >= 0")

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        dispatchers=args.dispatchers,
        shard_size=args.shard_size,
        store_path=args.store,
        cache_dir=args.cache_dir,
        quota_units=args.quota_units,
        quota_refill_per_s=args.quota_refill,
        unit_timeout=args.timeout,
        forensics_dir=args.forensics_out,
        verbose=args.verbose,
    )
    telemetry = Telemetry(TraceConfig(enabled=args.trace))
    daemon = ServiceDaemon(config, telemetry=telemetry)
    print(
        f"[scord-serve] listening on {daemon.address} "
        f"(workers={config.workers}, dispatchers={config.dispatchers}, "
        f"quota={config.quota_units:g}@{config.quota_refill_per_s:g}/s)"
        + (f" store={config.store_path}" if config.store_path else "")
        + (f" cache={config.cache_dir}" if config.cache_dir else ""),
        file=sys.stderr,
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.drain(timeout=30)
    if args.trace and args.store:
        trace_path = args.store + ".service-trace.json"
        for written in telemetry.export(trace_path, None):
            print(f"[telemetry written to {written}]", file=sys.stderr)
    print("[scord-serve] drained; bye", file=sys.stderr, flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(serve_main())
