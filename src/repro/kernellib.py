"""Reusable device-side idioms for kernel authors.

The ScoR applications each implement CUDA's synchronization idioms inline
(so their race flags can mis-scope individual constituents); this module
packages the *correct* versions for downstream users.  All helpers are
sub-generators — drive them with ``yield from``:

    from repro.kernellib import spin_lock, spin_unlock

    def kernel(ctx, lock, shared):
        got = yield from spin_lock(ctx, lock, 0)
        if got:
            value = yield ctx.ld(shared, 0, volatile=True)
            yield ctx.st(shared, 0, value + 1, volatile=True)
            yield from spin_unlock(ctx, lock, 0)

Every helper follows the correctness rules of docs/writing_kernels.md, so
kernels composed from them are race-free by construction (ScoRD-verified
in tests/test_kernellib.py).
"""

from __future__ import annotations

from repro.isa.scopes import Scope

DEFAULT_SPIN_LIMIT = 20_000


def spin_lock(ctx, lock, index, scope: Scope = Scope.DEVICE,
              spin_limit: int = DEFAULT_SPIN_LIMIT):
    """Acquire a lock: ``while(atomicCAS(&l,0,1)); fence`` (paper §II-B).

    *scope* applies to both constituents (CAS and fence) — use
    ``Scope.BLOCK`` only if every thread that ever takes this lock lives
    in one block.  Returns True on success, False if *spin_limit* was
    exhausted (the caller must then skip its critical section).
    """
    spins = 0
    while True:
        old = yield ctx.atomic_cas(lock, index, 0, 1, scope=scope)
        if old == 0:
            break
        spins += 1
        if spins >= spin_limit:
            return False
        yield ctx.compute(25)
    yield ctx.fence(scope)
    return True


def spin_unlock(ctx, lock, index, scope: Scope = Scope.DEVICE):
    """Release a lock: ``fence; atomicExch(&l, 0)``."""
    yield ctx.fence(scope)
    yield ctx.atomic_exch(lock, index, 0, scope=scope)


def publish(ctx, flag, index, scope: Scope = Scope.DEVICE):
    """Set a handoff flag after a fence covering the consumers.

    Store your (volatile) payload first, then ``yield from publish(...)``.
    """
    yield ctx.fence(scope)
    yield ctx.atomic_exch(flag, index, 1, scope=scope)


def await_flag(ctx, flag, index, scope: Scope = Scope.DEVICE,
               spin_limit: int = DEFAULT_SPIN_LIMIT, backoff: int = 25):
    """Spin (atomically) until a handoff flag is set; bounded.

    Returns True if the flag arrived, False if the bound expired.
    """
    spins = 0
    while True:
        value = yield ctx.atomic_add(flag, index, 0, scope=scope)
        if value == 1:
            return True
        spins += 1
        if spins >= spin_limit:
            return False
        yield ctx.compute(backoff)


def global_barrier(ctx, arrive, index, spin_limit: int = DEFAULT_SPIN_LIMIT):
    """Device-wide barrier over all resident blocks.

    Each block's leader arrives at a device-scope counter and spins until
    every block has; the other warps wait at ``__syncthreads``.  Word
    *index* of *arrive* must be zero-initialized and used by exactly one
    barrier episode (use one word per phase).  The grid must fit the GPU
    (all blocks resident), as with CUDA cooperative groups.

    Returns True on success, False if the leader's spin bound expired.
    """
    ok = True
    yield ctx.barrier()
    if ctx.tid == 0:
        yield ctx.atomic_add(arrive, index, 1)
        spins = 0
        while True:
            done = yield ctx.atomic_add(arrive, index, 0)
            if done >= ctx.nbid:
                break
            spins += 1
            if spins >= spin_limit:
                ok = False
                break
            yield ctx.compute(30)
    yield ctx.barrier()
    return ok


def grid_stride(ctx, total):
    """Indices this thread owns under a grid-stride loop."""
    return range(ctx.gtid, total, ctx.nthreads)


def block_reduce_scratchpad(ctx, value):
    """Block-wide sum via the scratchpad; every thread must call this.

    Returns the block total (valid in every thread after the final
    barrier).  Uses scratchpad words ``[0, blockDim)``.
    """
    yield ctx.shst(ctx.tid, value)
    yield ctx.barrier()
    stride = ctx.ntid // 2
    while stride > 0:
        if ctx.tid < stride:
            a = yield ctx.shld(ctx.tid)
            b = yield ctx.shld(ctx.tid + stride)
            yield ctx.shst(ctx.tid, a + b)
        yield ctx.barrier()
        stride //= 2
    total = yield ctx.shld(0)
    return total
