"""Lint adapters for everything in the repository that owns a kernel.

Because :class:`~repro.scolint.driver.LintGPU` mirrors the host API of
the real :class:`~repro.engine.gpu.GPU`, each adapter below replays the
corresponding runner (``run_micro`` / ``run_app`` / ``run_litmus``) on
the abstract interpreter — same allocation layout, same wrapper kernel,
same launch shape — and returns a :class:`LintResult` instead of a
simulated machine.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.arch.config import GPUConfig
from repro.litmus.framework import LitmusTest
from repro.scolint.analysis import analyze
from repro.scolint.driver import LintGPU
from repro.scolint.model import Finding, LintError
from repro.scor.apps.base import ScorApp
from repro.scor.micro.base import Micro, MicroMem, launch_shape, role_of
from repro.scord.races import RaceType


@dataclasses.dataclass
class LintResult:
    """The static verdict for one lintable target."""

    target: str                   #: e.g. "micro:fence_missing_cross_block"
    kind: str                     #: "micro" | "app" | "litmus"
    findings: List[Finding]
    ops: int                      #: operations interpreted
    launches: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def race_types(self) -> frozenset:
        """Race types flagged, comparable to dynamic ScoRD verdicts."""
        return frozenset(f.race_type for f in self.findings)

    def render(self) -> str:
        head = (f"{self.target}: "
                + ("clean" if self.clean
                   else f"{len(self.findings)} finding(s)")
                + f" ({self.launches} launch(es), {self.ops} ops)")
        body = [finding.render() for finding in
                sorted(self.findings, key=lambda f: (f.rule, f.array or ""))]
        return "\n".join([head] + body)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "clean": self.clean,
            "launches": self.launches,
            "ops": self.ops,
            "findings": [
                finding.as_dict() for finding in
                sorted(self.findings,
                       key=lambda f: (f.rule, f.array or "", f.kernel))
            ],
        }


def _result(target: str, kind: str, gpu: LintGPU) -> LintResult:
    findings = analyze(gpu)
    return LintResult(
        target=target,
        kind=kind,
        findings=findings,
        ops=sum(trace.ops for trace in gpu.traces),
        launches=len(gpu.traces),
    )


# ----------------------------------------------------------------------
# Microbenchmarks (mirrors scor.micro.base.run_micro)
# ----------------------------------------------------------------------
def lint_micro(
    micro: Micro, gpu_config: Optional[GPUConfig] = None
) -> LintResult:
    config = gpu_config if gpu_config is not None else GPUConfig.scaled_default()
    gpu = LintGPU(config=config)
    mem = MicroMem(
        data=gpu.alloc(8, "data"),
        flag=gpu.alloc(1, "flag"),
        lock=gpu.alloc(1, "lock"),
        lock2=gpu.alloc(1, "lock2"),
        aux=gpu.alloc(8, "aux"),
    )
    placement = micro.placement

    def wrapper(ctx, mem):
        role = role_of(ctx, placement)
        yield from micro.kernel(ctx, role, mem)

    wrapper.__name__ = micro.name
    grid, block_dim = launch_shape(placement, config.threads_per_warp)
    gpu.launch(wrapper, grid=grid, block_dim=block_dim, args=(mem,))
    return _result(f"micro:{micro.name}", "micro", gpu)


# ----------------------------------------------------------------------
# Applications (mirrors scor.apps.base.run_app)
# ----------------------------------------------------------------------
def lint_app(
    app: Union[ScorApp, type],
    races: Sequence[str] = (),
    seed: int = 1,
    gpu_config: Optional[GPUConfig] = None,
) -> LintResult:
    if isinstance(app, type):
        app = app(races=races, seed=seed)
    config = gpu_config if gpu_config is not None else GPUConfig.scaled_default()
    gpu = LintGPU(config=config)
    app.run(gpu)
    suffix = "+".join(sorted(app.races))
    target = f"app:{app.name}" + (f"+{suffix}" if suffix else "")
    return _result(target, "app", gpu)


# ----------------------------------------------------------------------
# Litmus thread programs (mirrors litmus.framework.run_litmus at the
# zero-delay grid point — delays inject no synchronization, so one
# point already carries every ordering fact the rules consult)
# ----------------------------------------------------------------------
def lint_litmus(
    test: LitmusTest, gpu_config: Optional[GPUConfig] = None
) -> LintResult:
    config = gpu_config if gpu_config is not None else GPUConfig.scaled_default()
    gpu = LintGPU(config=config)
    mem = gpu.alloc(test.shared_words, "mem")
    out = gpu.alloc(max(1, test.observed), "out")
    for i in range(test.observed):
        gpu.write(out, i, -1)

    bodies = [test.t0, test.t1]
    for extra in (test.t2, test.t3):
        if extra is not None:
            bodies.append(extra)
    num_threads = len(bodies)
    same_block = test.same_block
    warp = config.threads_per_warp

    def kernel(ctx, mem, out):
        if same_block:
            role = 0 if ctx.tid == 0 else (1 if ctx.tid == warp else None)
        else:
            role = (
                ctx.bid if ctx.tid == 0 and ctx.bid < num_threads else None
            )
        if role is not None:
            yield from bodies[role](ctx, mem, out)

    kernel.__name__ = test.name
    grid, block_dim = (1, 2 * warp) if same_block else (num_threads, warp)
    gpu.launch(kernel, grid=grid, block_dim=block_dim, args=(mem, out))
    return _result(f"litmus:{test.name}", "litmus", gpu)


# ----------------------------------------------------------------------
# Whole-suite sweep
# ----------------------------------------------------------------------
def lint_suite(
    micros: bool = True,
    apps: bool = True,
    litmus: bool = False,
    race_flags: bool = True,
    gpu_config: Optional[GPUConfig] = None,
    telemetry=None,
) -> List[LintResult]:
    """Lint the registered suite; ``lint.*`` counters land in *telemetry*.

    With ``race_flags`` each application is additionally linted once per
    race flag (the injected-bug configurations the cross-validation
    compares against dynamic ScoRD).  Litmus programs intentionally
    exhibit weak behaviours, so they are opt-in and their findings are
    informational.
    """
    results: List[LintResult] = []
    if micros:
        from repro.scor.micro.registry import ALL_MICROS
        for micro in ALL_MICROS:
            results.append(lint_micro(micro, gpu_config=gpu_config))
    if apps:
        from repro.scor.apps.registry import ALL_APPS
        for app_cls in ALL_APPS:
            results.append(lint_app(app_cls, gpu_config=gpu_config))
            if race_flags:
                for flag in app_cls.RACE_FLAGS:
                    results.append(lint_app(
                        app_cls, races=(flag.name,), gpu_config=gpu_config
                    ))
    if litmus:
        from repro.litmus.catalog import ALL_LITMUS_TESTS
        for test in ALL_LITMUS_TESTS:
            results.append(lint_litmus(test, gpu_config=gpu_config))
    if telemetry is not None:
        record_lint_metrics(telemetry, results)
    return results


def record_lint_metrics(telemetry, results: Sequence[LintResult]) -> None:
    """Publish ``lint.*`` counters for a batch of results."""
    metrics = telemetry.metrics
    metrics.counter("lint.targets").inc(len(results))
    metrics.counter("lint.findings").inc(
        sum(len(r.findings) for r in results)
    )
    metrics.counter("lint.clean_targets").inc(
        sum(1 for r in results if r.clean)
    )
    metrics.counter("lint.ops_interpreted").inc(
        sum(r.ops for r in results)
    )
    for race_type in RaceType:
        hits = sum(
            1 for r in results for f in r.findings
            if f.race_type is race_type
        )
        if hits:
            metrics.counter(
                "lint.findings_by_type", type=race_type.value
            ).inc(hits)
