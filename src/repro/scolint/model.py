"""Data model of the static lint pass: accesses, rules, and findings.

The driver (:mod:`repro.scolint.driver`) interprets kernel generators and
produces :class:`Access` records; the analysis
(:mod:`repro.scolint.analysis`) turns them into :class:`Finding`\\ s, each
tagged with one of the :data:`RULES` below.  Every rule maps onto one race
class of the paper's taxonomy (Table IV), so static findings and dynamic
:class:`~repro.scord.races.RaceType` verdicts are directly comparable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.common.errors import ReproError
from repro.isa.scopes import Scope
from repro.scord.races import RaceType


class LintError(ReproError):
    """The static analyzer could not drive or analyze a kernel."""

    code = "lint"


#: rule identifier -> (race type, one-line description, suggested fix)
RULES: Dict[str, Tuple[RaceType, str, str]] = {
    "SL-A1": (
        RaceType.SCOPED_ATOMIC,
        "block-scoped atomic on data reachable from another threadblock",
        "widen the atomic to device scope (drop the _block suffix)",
    ),
    "SL-F1": (
        RaceType.MISSING_DEVICE_FENCE,
        "conflicting cross-block accesses with no device-scope ordering",
        "order the accesses: __threadfence() after the write, then a "
        "device-atomic handoff (or a common device-scoped lock)",
    ),
    "SL-F2": (
        RaceType.MISSING_BLOCK_FENCE,
        "conflicting same-block accesses with no block-scope ordering",
        "separate the accesses with __syncthreads(), or "
        "__threadfence_block() plus an atomic handoff",
    ),
    "SL-F3": (
        RaceType.SCOPED_FENCE,
        "a fence orders the accesses but its scope is too narrow",
        "widen __threadfence_block() to __threadfence() (device scope)",
    ),
    "SL-L1": (
        RaceType.LOCK,
        "lock-protected access conflicts with one holding a different "
        "lock (or none)",
        "protect both accesses with the same device-scoped lock",
    ),
    "SL-S1": (
        RaceType.NOT_STRONG,
        "polling loop re-reads a remotely-written word with a plain "
        "(non-strong) load",
        "mark the polled load volatile/strong, or poll with an atomic",
    ),
}

#: race type -> the rule that reports it (the inverse of RULES)
RULE_FOR_TYPE: Dict[RaceType, str] = {
    race_type: rule for rule, (race_type, _, _) in RULES.items()
}


class Access:
    """One interpreted global-memory access by one abstract thread."""

    __slots__ = (
        "thread", "bid", "warp", "clock", "kind", "addr", "atomic",
        "scope", "strong", "is_write", "vc", "lockset", "line", "func",
    )

    def __init__(self, thread, bid, warp, clock, kind, addr, atomic,
                 scope, strong, is_write, vc, lockset, line, func):
        self.thread = thread      #: global thread index within the launch
        self.bid = bid            #: block index
        self.warp = warp          #: global warp identity (bid, warp_id)
        self.clock = clock        #: per-thread op counter at this access
        self.kind = kind          #: "ld" | "st" | "rmw" | "acq-ld" | "rel-st"
        self.addr = addr          #: byte address
        self.atomic = atomic      #: performed at a scope's point of coherence
        self.scope = scope        #: Scope for atomics/scoped ops, else None
        self.strong = strong      #: volatile / strong qualifier
        self.is_write = is_write
        self.vc = vc              #: thread's vector clock (shared, frozen ref)
        self.lockset = lockset    #: ((lock_addr, cas_scope, acq_fence), ...)
        self.line = line          #: "file.py:NN" of the yielding statement
        self.func = func          #: code object name of that frame

    def describe(self) -> str:
        qual = []
        if self.atomic and self.scope is not None:
            qual.append(f"{self.scope.name.lower()}-scope")
        if self.strong and not self.atomic:
            qual.append("volatile")
        noun = {
            "ld": "load", "st": "store", "rmw": "atomic RMW",
            "acq-ld": "acquire-load", "rel-st": "release-store",
        }[self.kind]
        rw = "write" if self.is_write else "read"
        prefix = " ".join(qual + [noun])
        return f"{prefix} ({rw}) at {self.line} in {self.func}()"


@dataclasses.dataclass(frozen=True)
class Site:
    """One endpoint of a finding — where the offending op sits."""

    line: str           #: "file.py:NN"
    func: str
    op: str             #: human description of the access
    block: int
    warp: int

    def render(self) -> str:
        return f"{self.op} [block {self.block}, warp {self.warp}]"

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Finding:
    """One static race diagnosis."""

    rule: str                       #: rule ID, e.g. "SL-F1"
    race_type: RaceType
    kernel: str                     #: kernel (launch) the pair was seen in
    array: Optional[str]            #: owning DeviceArray name, if known
    addr: int
    span: Scope                     #: BLOCK (same block) or DEVICE
    sites: Tuple[Site, ...]         #: offending op(s), primary first
    message: str
    fix: str
    count: int = 1                  #: distinct access pairs collapsed in

    @property
    def key(self) -> tuple:
        """Dedup identity: rule + object + the offending source lines.

        The object is the owning *array*, not the element — the same
        bad op pair over a lock array is one diagnosis, not one per
        word — falling back to the address for unattributed memory.
        """
        lines = frozenset(site.line for site in self.sites)
        array = self.array.partition("[")[0] if self.array else self.addr
        return (self.rule, array, lines)

    def render(self) -> str:
        where = self.array if self.array else f"0x{self.addr:x}"
        lines = [
            f"[{self.rule} {self.race_type.value}] {where} "
            f"(kernel {self.kernel!r}, {self.span.name.lower()} span)"
        ]
        for site in self.sites:
            lines.append(f"    {site.render()}")
        lines.append(f"    why: {self.message}")
        lines.append(f"    fix: {self.fix}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "race_type": self.race_type.value,
            "kernel": self.kernel,
            "array": self.array,
            "span": self.span.name.lower(),
            "sites": [site.as_dict() for site in self.sites],
            "message": self.message,
            "fix": self.fix,
            "count": self.count,
        }
