"""ScoRD-lint: a static scope-misuse analyzer over the kernel DSL.

The dynamic detector only flags a scoped race when the buggy access
pair actually reaches the memory system under the simulated schedule.
This package gives a schedule-independent second opinion: it abstractly
interprets each kernel generator over a small thread set (no timing, no
caches, no detector), extracts per-kernel access summaries, and applies
the paper's race taxonomy as static rules (see ``docs/scolint.md`` for
the rule catalog).

Quickstart::

    from repro.scolint import lint_micro, lint_app
    from repro.scor.micro.registry import micro_by_name
    from repro.scor.apps.registry import app_by_name

    result = lint_micro(micro_by_name("fence_missing_cross_block"))
    for finding in result.findings:
        print(finding.render())

    result = lint_app(app_by_name("UTS"), races=("block_exch_global",))

or from the shell: ``scord-experiments lint`` (see ``--help``).
"""

from repro.scolint.analysis import analyze, analyze_launch
from repro.scolint.driver import LaunchTrace, LintGPU
from repro.scolint.model import (
    RULE_FOR_TYPE,
    RULES,
    Finding,
    LintError,
    Site,
)
from repro.scolint.report import as_report, render_json, render_text
from repro.scolint.suite import (
    LintResult,
    lint_app,
    lint_litmus,
    lint_micro,
    lint_suite,
    record_lint_metrics,
)

__all__ = [
    "RULES",
    "RULE_FOR_TYPE",
    "Finding",
    "LintError",
    "LintGPU",
    "LaunchTrace",
    "LintResult",
    "Site",
    "analyze",
    "analyze_launch",
    "as_report",
    "lint_app",
    "lint_litmus",
    "lint_micro",
    "lint_suite",
    "record_lint_metrics",
    "render_json",
    "render_text",
]
