"""Abstract interpretation of kernel generators — no simulation.

:class:`LintGPU` mimics the host-side surface of
:class:`repro.engine.gpu.GPU` (``alloc``/``write``/``read``/
``write_array``/``read_array``/``launch``), so any workload written
against the real GPU — a ScoR application's ``run(gpu)``, a
microbenchmark wrapper, a litmus thread program — drives the linter
unmodified.  Instead of simulating timing, caches, and the detector,
``launch`` steps every thread's generator round-robin over a
sequentially-consistent memory and records a per-launch trace of global
accesses annotated with everything the static rules need:

* the **vector clock** of the thread at the access (happens-before
  edges come only from atomics, barriers, and scoped release/acquire
  ops — never from timing, so the verdict is schedule-independent);
* the thread's **fence history** per scope (sorted clock lists, so the
  analysis can ask "did the writer fence between the write and the
  point the reader synchronized?" with a binary search);
* the **lockset** — which CUDA-idiom spin locks (successful
  ``atomicCAS(lock, 0, 1)`` … ``atomicExch(lock, 0)``) the thread held,
  and with what acquire-fence scope.

The interpreter executes one operation per runnable thread per round.
Spin loops in the suite are bounded, and ``max_steps`` backstops the
whole launch, so linting always terminates.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.config import GPUConfig
from repro.engine.context import ThreadCtx
from repro.isa.ops import (
    AcquireLd,
    AtomicOp,
    AtomicRMW,
    Barrier,
    Compute,
    Fence,
    Ld,
    ReleaseSt,
    ShLd,
    ShSt,
    St,
)
from repro.isa.scopes import Scope
from repro.mem.allocator import DeviceAllocator, DeviceArray
from repro.scolint.model import Access, LintError

DEFAULT_CAPACITY_BYTES = 256 * 1024
DEFAULT_MAX_STEPS = 8_000_000

_SPANS = (Scope.BLOCK, Scope.DEVICE, Scope.SYSTEM)


class _Thread:
    """Interpreter state for one abstract device thread."""

    __slots__ = ("index", "gen", "bid", "tid", "warp", "clock", "vc",
                 "fences", "holdings", "lockset", "finished", "waiting",
                 "send_value")

    def __init__(self, index: int, gen, bid: int, tid: int, warp: Tuple[int, int]):
        self.index = index
        self.gen = gen
        self.bid = bid
        self.tid = tid
        self.warp = warp
        self.clock = 0
        # Vector clock over *other* threads' op counters.  Treated as
        # immutable: joins replace the dict (copy-on-write), so Access
        # records can hold a reference instead of a snapshot.
        self.vc: Dict[int, int] = {}
        self.fences: Dict[Scope, List[int]] = {s: [] for s in _SPANS}
        # lock addr -> [cas_scope, acquire_fence_scope_or_None]
        self.holdings: Dict[int, list] = {}
        self.lockset: tuple = ()
        self.finished = False
        self.waiting = False
        self.send_value = None

    def refresh_lockset(self) -> None:
        self.lockset = tuple(sorted(
            (addr, entry[0], entry[1])
            for addr, entry in self.holdings.items()
        ))

    def join(self, published: Optional[Dict[int, int]]) -> None:
        """Absorb a published vector clock (copy-on-write)."""
        if not published:
            return
        vc = self.vc
        updates = None
        for thread, clock in published.items():
            if thread != self.index and vc.get(thread, -1) < clock:
                if updates is None:
                    updates = {}
                updates[thread] = clock
        if updates:
            merged = dict(vc)
            merged.update(updates)
            self.vc = merged

    def full_vc(self) -> Dict[int, int]:
        vc = dict(self.vc)
        vc[self.index] = self.clock
        return vc


class LaunchTrace:
    """Everything the analysis needs from one interpreted launch."""

    __slots__ = ("kernel", "grid", "block_dim", "accesses", "fences",
                 "warp_of", "ops")

    def __init__(self, kernel: str, grid: int, block_dim: int):
        self.kernel = kernel
        self.grid = grid
        self.block_dim = block_dim
        self.accesses: List[Access] = []
        #: thread index -> {scope: sorted fence clocks} (shared with the
        #: thread state; complete once the launch returns)
        self.fences: Dict[int, Dict[Scope, List[int]]] = {}
        self.warp_of: Dict[int, Tuple[int, int]] = {}
        self.ops = 0


def _apply_rmw(op: AtomicOp, old: int, operand: int, compare) -> int:
    if op is AtomicOp.ADD:
        return old + operand
    if op is AtomicOp.SUB:
        return old - operand
    if op is AtomicOp.EXCH:
        return operand
    if op is AtomicOp.CAS:
        return operand if old == compare else old
    if op is AtomicOp.MIN:
        return min(old, operand)
    if op is AtomicOp.MAX:
        return max(old, operand)
    if op is AtomicOp.AND:
        return old & operand
    if op is AtomicOp.OR:
        return old | operand
    if op is AtomicOp.XOR:
        return old ^ operand
    raise LintError(f"unknown atomic op {op!r}")


def _location(gen) -> Tuple[str, str]:
    """(``file.py:line``, function) of the innermost suspended frame."""
    while True:
        sub = getattr(gen, "gi_yieldfrom", None)
        if sub is None or getattr(sub, "gi_frame", None) is None:
            break
        gen = sub
    frame = gen.gi_frame
    if frame is None:
        return ("<finished>", "<finished>")
    code = frame.f_code
    return (f"{os.path.basename(code.co_filename)}:{frame.f_lineno}",
            code.co_name)


class LintGPU:
    """Drop-in host API that interprets kernels instead of simulating.

    >>> from repro.scolint import LintGPU, analyze
    >>> gpu = LintGPU()
    >>> counter = gpu.alloc(1, "counter")
    >>> def bump(ctx, counter):
    ...     yield ctx.atomic_add(counter, 0, 1)
    >>> trace = gpu.launch(bump, grid=4, block_dim=8, args=(counter,))
    >>> gpu.read(counter, 0)
    32
    >>> analyze(gpu)
    []
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.config = config if config is not None else GPUConfig.scaled_default()
        self.allocator = DeviceAllocator(capacity_bytes)
        self.max_steps = max_steps
        self.steps = 0
        self.traces: List[LaunchTrace] = []
        self._mem: Dict[int, int] = {}
        # Per-launch state (reset by launch(): launches are device-wide
        # synchronization points, so edges never cross them).
        self._sync: Dict[int, Dict[int, int]] = {}
        self._shared: Dict[Tuple[int, int], int] = {}
        self._blocks: Dict[int, List[_Thread]] = {}
        self._alive: Dict[int, int] = {}
        self._trace: Optional[LaunchTrace] = None

    # ------------------------------------------------------------------
    # Host-side memory API (mirrors repro.engine.gpu.GPU)
    # ------------------------------------------------------------------
    def alloc(self, length: int, name: Optional[str] = None) -> DeviceArray:
        return self.allocator.alloc(length, name)

    def write(self, array: DeviceArray, index: int, value: int) -> None:
        self._mem[array.addr(index)] = value

    def read(self, array: DeviceArray, index: int) -> int:
        return self._mem.get(array.addr(index), 0)

    def write_array(self, array: DeviceArray, values: Iterable[int]) -> None:
        for index, value in enumerate(values):
            self._mem[array.addr(index)] = value

    def read_array(self, array: DeviceArray) -> List[int]:
        return [self._mem.get(array.addr(i), 0) for i in range(len(array))]

    # ------------------------------------------------------------------
    # Kernel launch (abstract interpretation)
    # ------------------------------------------------------------------
    def launch(
        self, kernel, grid: int, block_dim: int, args: Sequence = ()
    ) -> LaunchTrace:
        name = getattr(kernel, "__name__", str(kernel))
        trace = LaunchTrace(name, grid, block_dim)
        self._trace = trace
        self._sync = {}
        self._shared = {}
        self._blocks = {}
        self._alive = {}
        warp_size = self.config.threads_per_warp

        threads: List[_Thread] = []
        for bid in range(grid):
            for tid in range(block_dim):
                ctx = ThreadCtx(tid, bid, block_dim, grid, warp_size)
                gen = kernel(ctx, *args)
                index = len(threads)
                thread = _Thread(index, gen, bid, tid, (bid, tid // warp_size))
                threads.append(thread)
                self._blocks.setdefault(bid, []).append(thread)
                trace.fences[index] = thread.fences
                trace.warp_of[index] = thread.warp
        for bid, members in self._blocks.items():
            self._alive[bid] = len(members)

        active = list(threads)
        while active:
            progressed = False
            survivors: List[_Thread] = []
            for thread in active:
                if thread.finished:
                    continue
                if thread.waiting:
                    survivors.append(thread)
                    continue
                self._step(thread)
                progressed = True
                if not thread.finished:
                    survivors.append(thread)
            active = [t for t in survivors if not t.finished]
            if active and not progressed:
                stuck = sorted(t.index for t in active if t.waiting)
                raise LintError(
                    f"kernel {name!r}: barrier deadlock "
                    f"(threads {stuck[:8]} waiting forever)"
                )
        self.traces.append(trace)
        return trace

    # ------------------------------------------------------------------
    def _step(self, thread: _Thread) -> None:
        self.steps += 1
        trace = self._trace
        trace.ops += 1
        if self.steps > self.max_steps:
            raise LintError(
                f"kernel {trace.kernel!r}: interpretation exceeded "
                f"{self.max_steps} steps (unbounded spin?)"
            )
        try:
            op = thread.gen.send(thread.send_value)
        except StopIteration:
            self._finish(thread)
            return
        except LintError:
            raise
        except Exception as err:
            raise LintError(
                f"kernel {trace.kernel!r} thread (block {thread.bid}, "
                f"tid {thread.tid}) raised {type(err).__name__}: {err}"
            ) from err
        thread.send_value = self._execute(thread, op)

    def _finish(self, thread: _Thread) -> None:
        thread.finished = True
        self._alive[thread.bid] -= 1
        self._release_barrier(thread.bid)

    # ------------------------------------------------------------------
    def _execute(self, thread: _Thread, op):
        # ThreadCtx recycles op instances, so every field is copied out
        # here before the thread is resumed.
        cls = op.__class__
        if cls is Ld:
            addr, strong = op.addr, op.strong
            thread.clock += 1
            self._record(thread, "ld", addr, False, None, strong, False)
            return self._mem.get(addr, 0)
        if cls is St:
            addr, value, strong = op.addr, op.value, op.strong
            thread.clock += 1
            self._record(thread, "st", addr, False, None, strong, True)
            # A plain store to a held lock word is a broken release: the
            # critical section ends here, but no happens-before edge is
            # published (see SL-F1 on the guarded data).
            if addr in thread.holdings:
                del thread.holdings[addr]
                thread.refresh_lockset()
            self._mem[addr] = value
            return None
        if cls is AtomicRMW:
            return self._execute_rmw(thread, op)
        if cls is Compute:
            thread.clock += 1
            return None
        if cls is Fence:
            scope = op.scope
            thread.clock += 1
            for span in _SPANS:
                if span <= scope:
                    thread.fences[span].append(thread.clock)
            changed = False
            for entry in thread.holdings.values():
                if entry[1] is None:
                    entry[1] = scope
                    changed = True
            if changed:
                thread.refresh_lockset()
            return None
        if cls is Barrier:
            thread.clock += 1
            thread.waiting = True
            self._release_barrier(thread.bid)
            return None
        if cls is AcquireLd:
            addr, scope = op.addr, op.scope
            thread.join(self._sync.get(addr))
            thread.clock += 1
            self._record(thread, "acq-ld", addr, True, scope, True, False)
            return self._mem.get(addr, 0)
        if cls is ReleaseSt:
            addr, value, scope = op.addr, op.value, op.scope
            thread.clock += 1
            # Release semantics order the thread's prior writes before
            # this store, so it doubles as a fence at its scope.
            for span in _SPANS:
                if span <= scope:
                    thread.fences[span].append(thread.clock)
            self._record(thread, "rel-st", addr, True, scope, True, True)
            self._mem[addr] = value
            self._sync[addr] = thread.full_vc()
            return None
        if cls is ShLd:
            thread.clock += 1
            return self._shared.get((thread.bid, op.offset), 0)
        if cls is ShSt:
            offset, value = op.offset, op.value
            thread.clock += 1
            self._shared[(thread.bid, offset)] = value
            return None
        raise LintError(
            f"kernel {self._trace.kernel!r} yielded a non-operation: {op!r}"
        )

    def _execute_rmw(self, thread: _Thread, op: AtomicRMW):
        addr, aop, operand = op.addr, op.op, op.operand
        scope, compare = op.scope, op.compare
        # Acquire side: reading the word at its point of coherence
        # absorbs every happens-before edge published through it (a
        # failed CAS still reads, e.g. a contended lock acquire).
        thread.join(self._sync.get(addr))
        thread.clock += 1
        old = self._mem.get(addr, 0)
        new = _apply_rmw(aop, old, operand, compare)
        # Value-preserving RMWs (the atomic-read idiom, e.g.
        # ``atomicAdd(&flag, 0)``) are reads: they publish nothing, so a
        # polling reader cannot manufacture ordering for its own writes.
        is_write = new != old
        self._record(thread, "rmw", addr, True, scope, True, is_write)
        if is_write:
            self._mem[addr] = new
            merged = dict(self._sync.get(addr) or ())
            for index, clock in thread.full_vc().items():
                if merged.get(index, -1) < clock:
                    merged[index] = clock
            self._sync[addr] = merged
        # CUDA lock idiom: a successful atomicCAS(lock, 0, nonzero)
        # acquires; atomicExch(lock, 0) by the holder releases.
        if (aop is AtomicOp.CAS and compare == 0 and old == 0
                and operand != 0):
            thread.holdings[addr] = [scope, None]
            thread.refresh_lockset()
        elif (aop is AtomicOp.EXCH and operand == 0
                and addr in thread.holdings):
            del thread.holdings[addr]
            thread.refresh_lockset()
        return old

    # ------------------------------------------------------------------
    def _record(self, thread: _Thread, kind: str, addr: int, atomic: bool,
                scope: Optional[Scope], strong: bool, is_write: bool) -> None:
        line, func = _location(thread.gen)
        self._trace.accesses.append(Access(
            thread.index, thread.bid, thread.warp, thread.clock, kind,
            addr, atomic, scope, strong, is_write, thread.vc,
            thread.lockset, line, func,
        ))

    def _release_barrier(self, bid: int) -> None:
        """Release the block's barrier once every live thread arrived.

        Arrival is counted, not matched by program point, mirroring a
        counting ``__syncthreads`` implementation; threads that already
        returned are treated as arrived but contribute no ordering.
        """
        alive = self._alive[bid]
        if alive <= 0:
            return
        waiting = [t for t in self._blocks[bid] if t.waiting]
        if len(waiting) != alive:
            return
        joined: Dict[int, int] = {}
        for thread in waiting:
            for index, clock in thread.full_vc().items():
                if joined.get(index, -1) < clock:
                    joined[index] = clock
        for thread in waiting:
            thread.waiting = False
            thread.send_value = None
            thread.vc = joined
            # __syncthreads orders the block's prior writes block-wide.
            thread.fences[Scope.BLOCK].append(thread.clock)
