"""Cross-validate static lint verdicts against dynamic ScoRD.

Every case in the suite — 32 microbenchmarks, 7 applications in their
race-free default configuration, and each application once per injected
race flag — is judged twice:

* **statically**, by linting the kernels with :mod:`repro.scolint`
  (schedule-independent, no simulation);
* **dynamically**, by simulating under the ScoRD detector and reading
  the race report.

A racey case is *caught* when the verdict contains at least one of the
case's expected race types (the Table VI criterion); a race-free case
is a *false positive* when the verdict is non-empty.  The harness emits
a per-race-type precision/recall table — the artifact EXPERIMENTS.md
embeds — where the interesting deltas live: schedules the simulator
never drives (dynamic misses lint catches, e.g. UTS's
``block_exch_global``) versus dynamic evidence static rules
over-approximate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.arch.config import GPUConfig
from repro.arch.detector_config import DetectorConfig
from repro.common.errors import ReproError
from repro.experiments.tables import render_table
from repro.scolint.suite import lint_app, lint_micro
from repro.scord.races import RaceType


@dataclasses.dataclass
class CrossCase:
    """One suite configuration judged statically and dynamically."""

    target: str                       #: "micro:<name>" | "app:<NAME>[+flag]"
    kind: str                         #: "micro" | "app"
    racey: bool
    expected_types: FrozenSet[RaceType]
    static_types: FrozenSet[RaceType] = frozenset()
    dynamic_types: FrozenSet[RaceType] = frozenset()
    static_findings: int = 0
    static_error: Optional[str] = None
    dynamic_error: Optional[str] = None

    @property
    def static_caught(self) -> bool:
        return bool(self.expected_types & self.static_types)

    @property
    def dynamic_caught(self) -> bool:
        return bool(self.expected_types & self.dynamic_types)

    @property
    def static_fp(self) -> bool:
        return not self.racey and bool(self.static_types)

    @property
    def dynamic_fp(self) -> bool:
        return not self.racey and bool(self.dynamic_types)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "racey": self.racey,
            "expected": sorted(t.value for t in self.expected_types),
            "static": sorted(t.value for t in self.static_types),
            "dynamic": sorted(t.value for t in self.dynamic_types),
            "static_caught": self.static_caught,
            "dynamic_caught": self.dynamic_caught,
            "static_error": self.static_error,
            "dynamic_error": self.dynamic_error,
        }


@dataclasses.dataclass
class CrossValidation:
    """All cases plus the derived precision/recall summary."""

    cases: List[CrossCase]
    dynamic_ran: bool

    # -- aggregation ---------------------------------------------------
    def _racey(self) -> List[CrossCase]:
        return [c for c in self.cases if c.racey]

    def _clean(self) -> List[CrossCase]:
        return [c for c in self.cases if not c.racey]

    def recall(self, dynamic: bool = False) -> float:
        racey = self._racey()
        if not racey:
            return 1.0
        caught = sum(
            1 for c in racey
            if (c.dynamic_caught if dynamic else c.static_caught)
        )
        return caught / len(racey)

    def false_positives(self, dynamic: bool = False) -> List[CrossCase]:
        return [
            c for c in self._clean()
            if (c.dynamic_fp if dynamic else c.static_fp)
        ]

    def precision(self, dynamic: bool = False) -> float:
        """Case-level: flagged-and-racey over flagged."""
        if dynamic:
            flagged = [c for c in self.cases if c.dynamic_types]
            true = [c for c in flagged if c.racey and c.dynamic_caught]
        else:
            flagged = [c for c in self.cases if c.static_types]
            true = [c for c in flagged if c.racey and c.static_caught]
        if not flagged:
            return 1.0
        return len(true) / len(flagged)

    def by_type(self) -> Dict[RaceType, Dict[str, int]]:
        """Per race type: injected / static-caught / dynamic-caught."""
        table: Dict[RaceType, Dict[str, int]] = {}
        for race_type in RaceType:
            injected = [
                c for c in self._racey() if race_type in c.expected_types
            ]
            if not injected:
                continue
            table[race_type] = {
                "injected": len(injected),
                "static": sum(
                    1 for c in injected if race_type in c.static_types
                ),
                "dynamic": sum(
                    1 for c in injected if race_type in c.dynamic_types
                ),
            }
        return table

    def disagreements(self) -> List[CrossCase]:
        """Racey cases one side catches and the other misses."""
        if not self.dynamic_ran:
            return []
        return [
            c for c in self._racey()
            if c.static_caught != c.dynamic_caught
        ]

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        rows = []
        for race_type, counts in sorted(
            self.by_type().items(), key=lambda kv: kv[0].value
        ):
            rows.append([
                race_type.value,
                counts["injected"],
                counts["static"],
                counts["dynamic"] if self.dynamic_ran else "-",
            ])
        racey = self._racey()
        clean = self._clean()
        rows.append([
            "TOTAL (cases)",
            len(racey),
            sum(1 for c in racey if c.static_caught),
            (sum(1 for c in racey if c.dynamic_caught)
             if self.dynamic_ran else "-"),
        ])
        note_lines = [
            f"race-free configurations: {len(clean)}; "
            f"static false positives: {len(self.false_positives())}"
            + (f"; dynamic false positives: "
               f"{len(self.false_positives(dynamic=True))}"
               if self.dynamic_ran else ""),
            f"static recall {self.recall():.2%}, "
            f"precision {self.precision():.2%}"
            + (f"; dynamic recall {self.recall(dynamic=True):.2%}, "
               f"precision {self.precision(dynamic=True):.2%}"
               if self.dynamic_ran else ""),
        ]
        for case in self.disagreements():
            side = "static-only" if case.static_caught else "dynamic-only"
            note_lines.append(
                f"disagreement: {case.target} caught {side} "
                f"(expected {sorted(t.value for t in case.expected_types)})"
            )
        return render_table(
            "Lint cross-validation: static vs dynamic, per race type",
            ["race type", "injected", "static caught", "dynamic caught"],
            rows,
            note="\n".join(note_lines),
        )

    def as_dict(self) -> dict:
        return {
            "schema": "scolint-crossval/v1",
            "dynamic_ran": self.dynamic_ran,
            "cases": [case.as_dict() for case in self.cases],
            "summary": {
                "racey_cases": len(self._racey()),
                "clean_cases": len(self._clean()),
                "static_recall": self.recall(),
                "static_precision": self.precision(),
                "static_false_positives": len(self.false_positives()),
                "dynamic_recall": (
                    self.recall(dynamic=True) if self.dynamic_ran else None
                ),
                "dynamic_precision": (
                    self.precision(dynamic=True) if self.dynamic_ran
                    else None
                ),
            },
        }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _suite_cases() -> List[CrossCase]:
    from repro.scor.apps.registry import ALL_APPS
    from repro.scor.micro.registry import ALL_MICROS

    cases = [
        CrossCase(
            target=f"micro:{micro.name}",
            kind="micro",
            racey=micro.racey,
            expected_types=micro.expected_types,
        )
        for micro in ALL_MICROS
    ]
    for app_cls in ALL_APPS:
        cases.append(CrossCase(
            target=f"app:{app_cls.name}",
            kind="app",
            racey=False,
            expected_types=frozenset(),
        ))
        cases.extend(
            CrossCase(
                target=f"app:{app_cls.name}+{flag.name}",
                kind="app",
                racey=True,
                expected_types=flag.expected_types,
            )
            for flag in app_cls.RACE_FLAGS
        )
    return cases


def _split_target(target: str):
    kind, _, rest = target.partition(":")
    name, _, flag = rest.partition("+")
    return kind, name, flag


def _run_static(case: CrossCase, gpu_config) -> None:
    from repro.scor.apps.registry import app_by_name
    from repro.scor.micro.registry import micro_by_name

    kind, name, flag = _split_target(case.target)
    try:
        if kind == "micro":
            result = lint_micro(micro_by_name(name), gpu_config=gpu_config)
        else:
            result = lint_app(
                app_by_name(name), races=(flag,) if flag else (),
                gpu_config=gpu_config,
            )
    except ReproError as err:
        case.static_error = err.describe()
        return
    case.static_types = result.race_types
    case.static_findings = len(result.findings)


def _run_dynamic(case: CrossCase, gpu_config, runner=None) -> None:
    from repro.scor.apps.base import run_app
    from repro.scor.apps.registry import app_by_name
    from repro.scor.micro.base import run_micro
    from repro.scor.micro.registry import micro_by_name

    kind, name, flag = _split_target(case.target)
    races = (flag,) if flag else ()
    try:
        if kind == "micro":
            gpu = run_micro(
                micro_by_name(name),
                detector_config=DetectorConfig.scord(),
                gpu_config=gpu_config,
            )
        elif runner is not None:
            # Route through the campaign's memoizing runner: the same
            # (app, scord, races) simulations back Table VI, so a
            # combined campaign pays for them once.
            record = runner.run(
                app_by_name(name), detector="scord", races=races
            )
            case.dynamic_types = frozenset(record.race_types)
            return
        else:
            app = app_by_name(name)(races=races)
            gpu = run_app(
                app,
                detector_config=DetectorConfig.scord(),
                gpu_config=gpu_config,
            )
    except ReproError as err:
        case.dynamic_error = err.describe()
        return
    case.dynamic_types = frozenset(
        record.race_type for record in gpu.races.unique_races
    )


def cross_validate(
    dynamic: bool = True,
    gpu_config: Optional[GPUConfig] = None,
    cases: Optional[Sequence[CrossCase]] = None,
    progress=None,
    runner=None,
) -> CrossValidation:
    """Judge the whole suite statically (and, by default, dynamically).

    ``dynamic=False`` skips the simulations — the static columns and
    false-positive accounting still populate, dynamic columns render as
    ``-``.  *progress* is an optional ``callable(str)`` narrating case
    completion (the CLI passes a printer).  *runner* is an optional
    :class:`repro.experiments.runner.Runner`: application simulations
    then flow through its memo/store/cache instead of running inline.
    """
    config = gpu_config if gpu_config is not None else GPUConfig.scaled_default()
    todo = list(cases) if cases is not None else _suite_cases()
    for case in todo:
        _run_static(case, config)
        if dynamic:
            _run_dynamic(case, config, runner=runner)
        if progress is not None:
            bits = [f"static={sorted(t.value for t in case.static_types) or 'clean'}"]
            if dynamic:
                bits.append(
                    f"dynamic={sorted(t.value for t in case.dynamic_types) or 'clean'}"
                )
            progress(f"{case.target}: " + " ".join(bits))
    return CrossValidation(cases=todo, dynamic_ran=dynamic)
