"""Static race rules over interpreted launch traces.

The analysis mirrors the paper's taxonomy (Table IV) as decision rules
over conflicting access pairs.  Two accesses conflict when they touch
the same word, come from different warps of the same launch, and at
least one writes.  The pairwise *span* is the scope synchronization
must cover: ``BLOCK`` for two warps of one block, ``DEVICE`` across
blocks.

Per pair, in order:

1. **SL-A1 (scoped-atomic)** — either access is an atomic whose scope
   is narrower than the span.  Decided per access signature, without
   clocks: a block-scoped atomic reachable from another CTA is broken
   no matter how the schedule lands.
2. Both accesses atomic at sufficient scope → race-free (atomics are
   performed at the span's point of coherence).
3. Otherwise every occurrence pair must be **ordered** (happens-before
   through atomics/barriers/scoped ops — never timing) and, when the
   earlier access is a plain write, **flushed**: the writer must fence
   at span scope between the write and the point the reader
   synchronized.  An ordered-but-unflushed pair is **SL-F1/SL-F2**
   (missing fence at the span) or **SL-F3** when a narrower fence sat
   in the window; an unordered pair is diagnosed through locksets —
   disjoint or one-sided locking is **SL-L1**, a common lock whose
   handoff never ordered the pair (broken release, missing or narrow
   acquire/release fences) reports the fence rules, and no locking at
   all falls back to the span's missing-fence rule.
4. **SL-S1 (not-strong)** piggybacks on any unordered pair whose read
   side is a polling signature: the same plain non-strong load executed
   three or more times by one thread on a remotely-written word.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.isa.scopes import Scope
from repro.scolint.driver import LaunchTrace, LintGPU
from repro.scolint.model import RULE_FOR_TYPE, RULES, Access, Finding, Site
from repro.scord.races import RaceType

#: occurrences of one plain load (thread, line, word) that make it a poll
POLL_THRESHOLD = 3


class _Sig:
    """All occurrences of one access signature on one word."""

    __slots__ = ("access", "occurrences")

    def __init__(self, access: Access):
        self.access = access
        self.occurrences: List[Access] = []


def _signatures(accesses: List[Access]) -> List[_Sig]:
    sigs: Dict[tuple, _Sig] = {}
    for access in accesses:
        key = (access.thread, access.line, access.kind, access.atomic,
               access.scope, access.strong, access.is_write, access.lockset)
        sig = sigs.get(key)
        if sig is None:
            sig = sigs[key] = _Sig(access)
        sig.occurrences.append(access)
    return list(sigs.values())


def _is_polling(sig: _Sig) -> bool:
    access = sig.access
    return (access.kind == "ld" and not access.atomic and not access.strong
            and len(sig.occurrences) >= POLL_THRESHOLD)


def _fence_between(clocks: List[int], after: int, by: int) -> bool:
    """Does a fence clock f exist with ``after < f <= by``?"""
    return bisect_right(clocks, by) > bisect_right(clocks, after)


def _check_pair(
    a: _Sig, b: _Sig, span: Scope, trace: LaunchTrace
) -> Optional[Tuple[str, Access, Access]]:
    """First violation among the occurrence pairs, or None if all safe.

    Returns (verdict, earlier/offending access, other access) where
    verdict is "missing-fence" | "narrow-fence" | "unordered".
    """
    fences_a = trace.fences[a.access.thread][span]
    fences_b = trace.fences[b.access.thread][span]
    narrow_a = trace.fences[a.access.thread][Scope.BLOCK]
    narrow_b = trace.fences[b.access.thread][Scope.BLOCK]
    check_narrow = span > Scope.BLOCK
    for occ_a in a.occurrences:
        for occ_b in b.occurrences:
            seen_a = occ_b.vc.get(occ_a.thread, -1)
            if seen_a >= occ_a.clock:
                first, other = occ_a, occ_b
                fences, narrow, upper = fences_a, narrow_a, seen_a
            else:
                seen_b = occ_a.vc.get(occ_b.thread, -1)
                if seen_b >= occ_b.clock:
                    first, other = occ_b, occ_a
                    fences, narrow, upper = fences_b, narrow_b, seen_b
                else:
                    return ("unordered", occ_a, occ_b)
            if not first.is_write or first.atomic:
                # Read-first pairs need only ordering; atomic writes are
                # performed at the span's point of coherence (scope
                # sufficiency was already established).
                continue
            if _fence_between(fences, first.clock, upper):
                continue
            if check_narrow and _fence_between(narrow, first.clock, upper):
                return ("narrow-fence", first, other)
            return ("missing-fence", first, other)
    return None


def _guarding(lockset: tuple, addr: int) -> tuple:
    """Lockset entries protecting *addr* (a lock never guards itself)."""
    return tuple(entry for entry in lockset if entry[0] != addr)


def _classify_unordered(
    occ_a: Access, occ_b: Access, span: Scope
) -> RaceType:
    locks_a = _guarding(occ_a.lockset, occ_a.addr)
    locks_b = _guarding(occ_b.lockset, occ_b.addr)
    common = ({e[0] for e in locks_a} & {e[0] for e in locks_b})
    missing = (RaceType.MISSING_DEVICE_FENCE if span > Scope.BLOCK
               else RaceType.MISSING_BLOCK_FENCE)
    if common:
        # Both sides hold the same lock, yet the handoff never ordered
        # them — a release was skipped or done with a plain store, or
        # the acquire/release fences were missing or too narrow.
        fence_scopes = [
            entry[2]
            for entry in locks_a + locks_b
            if entry[0] in common
        ]
        if any(scope is None for scope in fence_scopes):
            return missing
        if min(fence_scopes) < span:
            return RaceType.SCOPED_FENCE
        return missing
    if locks_a or locks_b:
        return RaceType.LOCK
    return missing


def _site(access: Access) -> Site:
    return Site(
        line=access.line,
        func=access.func,
        op=access.describe(),
        block=access.bid,
        warp=access.warp[1],
    )


def _finding(
    race_type: RaceType,
    kernel: str,
    primary: Access,
    other: Optional[Access],
    span: Scope,
    allocator,
) -> Finding:
    rule = RULE_FOR_TYPE[race_type]
    _, message, fix = RULES[rule]
    array = None
    addr = primary.addr
    if allocator is not None:
        owner = allocator.owner_of(addr)
        if owner is not None:
            array = f"{owner.name}[{owner.index_of(addr)}]"
    sites = [_site(primary)]
    if other is not None:
        sites.append(_site(other))
    return Finding(
        rule=rule,
        race_type=race_type,
        kernel=kernel,
        array=array,
        addr=addr,
        span=span,
        sites=tuple(sites),
        message=message,
        fix=fix,
    )


def analyze_launch(trace: LaunchTrace, allocator=None) -> List[Finding]:
    """Apply the static rules to one launch; findings are deduplicated."""
    by_addr: Dict[int, List[Access]] = {}
    for access in trace.accesses:
        by_addr.setdefault(access.addr, []).append(access)

    findings: Dict[tuple, Finding] = {}

    def emit(race_type, primary, other, span):
        finding = _finding(
            race_type, trace.kernel, primary, other, span, allocator
        )
        existing = findings.get(finding.key)
        if existing is None:
            findings[finding.key] = finding
        else:
            existing.count += 1

    for addr, accesses in by_addr.items():
        if len({a.warp for a in accesses}) < 2:
            continue
        if not any(a.is_write for a in accesses):
            continue
        sigs = _signatures(accesses)
        polling = {id(s) for s in sigs if _is_polling(s)}
        for i, sig_a in enumerate(sigs):
            for sig_b in sigs[i + 1:]:
                a, b = sig_a.access, sig_b.access
                if a.warp == b.warp:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                span = Scope.DEVICE if a.bid != b.bid else Scope.BLOCK
                under = [s for s in (sig_a, sig_b)
                         if s.access.atomic and s.access.scope < span]
                if under:
                    for sig in under:
                        other = sig_b if sig is sig_a else sig_a
                        emit(RaceType.SCOPED_ATOMIC, sig.access,
                             other.access, span)
                    continue
                if a.atomic and b.atomic:
                    continue
                violation = _check_pair(sig_a, sig_b, span, trace)
                if violation is None:
                    continue
                verdict, first, second = violation
                if verdict == "narrow-fence":
                    emit(RaceType.SCOPED_FENCE, first, second, span)
                elif verdict == "missing-fence":
                    race_type = (RaceType.MISSING_DEVICE_FENCE
                                 if span > Scope.BLOCK
                                 else RaceType.MISSING_BLOCK_FENCE)
                    emit(race_type, first, second, span)
                else:
                    emit(_classify_unordered(first, second, span),
                         first, second, span)
                    for sig in (sig_a, sig_b):
                        if id(sig) in polling:
                            other = sig_b if sig is sig_a else sig_a
                            emit(RaceType.NOT_STRONG, sig.access,
                                 other.access, span)
    return list(findings.values())


def analyze(gpu: LintGPU) -> List[Finding]:
    """Lint every launch interpreted on *gpu*; dedup across launches."""
    findings: Dict[tuple, Finding] = {}
    for trace in gpu.traces:
        for finding in analyze_launch(trace, gpu.allocator):
            existing = findings.get(finding.key)
            if existing is None:
                findings[finding.key] = finding
            else:
                existing.count += finding.count
    return list(findings.values())
