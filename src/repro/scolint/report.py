"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Sequence

from repro.scolint.suite import LintResult

#: schema tag embedded in JSON reports (bump on shape changes)
REPORT_SCHEMA = "scolint-report/v1"


def render_text(results: Sequence[LintResult], verbose: bool = False) -> str:
    """Human-oriented report: findings in full, clean targets summarized."""
    lines = []
    clean = [r for r in results if r.clean]
    dirty = [r for r in results if not r.clean]
    for result in dirty:
        lines.append(result.render())
        lines.append("")
    if verbose:
        for result in clean:
            lines.append(result.render())
    elif clean:
        lines.append(f"{len(clean)} target(s) clean: "
                     + ", ".join(r.target for r in clean))
    total = sum(len(r.findings) for r in results)
    lines.append("")
    lines.append(
        f"scolint: {len(results)} target(s), {total} finding(s), "
        f"{len(clean)} clean"
    )
    return "\n".join(lines).strip() + "\n"


def as_report(results: Sequence[LintResult]) -> dict:
    return {
        "schema": REPORT_SCHEMA,
        "targets": [r.as_dict() for r in results],
        "summary": {
            "targets": len(results),
            "clean": sum(1 for r in results if r.clean),
            "findings": sum(len(r.findings) for r in results),
        },
    }


def render_json(results: Sequence[LintResult]) -> str:
    return json.dumps(as_report(results), indent=2, sort_keys=True) + "\n"
