"""Reproduction of "ScoRD: A Scoped Race Detector for GPUs" (ISCA 2020).

The package provides, from scratch and in pure Python:

* a warp-level SIMT GPU simulator with a scope-aware memory model
  (:mod:`repro.engine`, :mod:`repro.mem`, :mod:`repro.timing`);
* the ScoRD hardware race detector and its baseline variants
  (:mod:`repro.scord`);
* the ScoR benchmark suite — seven applications and thirty-two
  microbenchmarks exercising scoped synchronization (:mod:`repro.scor`);
* experiment harnesses regenerating every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import GPU, DetectorConfig, Scope

    gpu = GPU(detector_config=DetectorConfig.scord())
    flag = gpu.alloc(1, "flag")
    data = gpu.alloc(1, "data")

    def producer_consumer(ctx, flag, data):
        if ctx.gtid == 0:                       # producer (block 0)
            yield ctx.st(data, 0, 42, volatile=True)
            yield ctx.fence(Scope.BLOCK)        # BUG: consumer is in block 1
            yield ctx.atomic_exch(flag, 0, 1)
        elif ctx.gtid == ctx.ntid:              # consumer (block 1)
            while (yield ctx.atomic_add(flag, 0, 0)) != 1:
                yield ctx.compute(20)
            value = yield ctx.ld(data, 0, volatile=True)

    gpu.launch(producer_consumer, grid=2, block_dim=8, args=(flag, data))
    print(gpu.races.summary())   # reports a scoped-fence race on `data`
"""

from repro.arch.config import DramTiming, GPUConfig, MemoryPreset, memory_preset
from repro.arch.detector_config import DetectorConfig, DetectorMode
from repro.engine.context import ThreadCtx
from repro.engine.gpu import GPU
from repro.engine.results import LaunchResult
from repro.isa.scopes import Scope
from repro.mem.allocator import DeviceArray
from repro.scord.races import RaceRecord, RaceReport, RaceScopeClass, RaceType

__version__ = "1.0.0"

__all__ = [
    "DetectorConfig",
    "DetectorMode",
    "DeviceArray",
    "DramTiming",
    "GPU",
    "GPUConfig",
    "LaunchResult",
    "MemoryPreset",
    "RaceRecord",
    "RaceReport",
    "RaceScopeClass",
    "RaceType",
    "Scope",
    "ThreadCtx",
    "memory_preset",
    "__version__",
]
