"""Configuration of the race-detection hardware.

The field widths here are the ones the paper commits to (Fig. 7 and §IV):
7-bit block IDs, 5-bit warp IDs, 6-bit fence counters, 8-bit barrier
counters, a 16-bit lock bloom filter, 4-entry per-warp lock tables with
6-bit address hashes, and a 4-bit metadata-cache tag.  They are configurable
so that tests can exercise wrap-around behaviour cheaply, and so the
Table VII granularity study (8B / 16B tracking) and the no-caching base
design are just alternative configurations of the same detector.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.common.errors import ConfigError


class DetectorMode(enum.Enum):
    """Which detector is attached to the memory system."""

    NONE = "none"  # no race detection (the paper's normalization baseline)
    SCORD = "scord"  # the ScoRD detector (with or without metadata caching)


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Parameters of the ScoRD hardware and its timing model."""

    mode: DetectorMode = DetectorMode.SCORD

    # --- Metadata organization -------------------------------------------
    # Bytes of data covered by one 8-byte metadata entry.  4 is ScoRD's
    # default; 8 and 16 reproduce the coarse-granularity baselines of
    # Table VII (which trade memory overhead for false positives).
    granularity_bytes: int = 4
    # Software cache of metadata: keep one entry per `cache_ratio`
    # granules, direct mapped, with a `tag_bits`-bit tag (paper §IV-B).
    # Disabled for the "base design w/o metadata caching".
    metadata_cache: bool = True
    cache_ratio: int = 16
    tag_bits: int = 4

    # --- Field widths (Fig. 7) -------------------------------------------
    block_id_bits: int = 7
    warp_id_bits: int = 5
    fence_id_bits: int = 6
    barrier_id_bits: int = 8
    bloom_bits: int = 16

    # --- Lock inference (§IV-A) ------------------------------------------
    lock_table_entries: int = 4
    lock_hash_bits: int = 6

    # --- Timing model toggles (Fig. 10 overhead breakdown) ----------------
    # LHD: stalling execution on L1 hits while the race detector's input
    # buffer is full.
    model_lhd: bool = True
    # NOC: extra payload (warp/block/fence IDs, bloom) on every packet and
    # detector packets for L1 hits.
    model_noc: bool = True
    # MD: memory traffic for metadata reads and writebacks.
    model_md: bool = True

    # Detector unit: check latency, sustained throughput (the detection
    # logic is simple combinational hardware and is pipelined), and
    # input-buffer depth.  When the buffer between the L1s and the
    # detector is full, L1 hits stall (the LHD overhead source).
    detector_service_cycles: int = 2
    detector_checks_per_cycle: int = 4
    detector_buffer_entries: int = 4

    # Extra bytes added to each memory-system packet when detection is on
    # (IDs + bloom filter; §V attributes NOC overhead to this).
    packet_overhead_bytes: int = 8

    # --- Comparator models (Table VIII demonstrations) --------------------
    # Ignore the scope of atomic operations (treat all atomics as device
    # scope).  This models Barracuda/CURD, which honour scoped fences but
    # not scoped atomics — they miss scoped-atomic races.
    ignore_atomic_scopes: bool = False
    # Additionally ignore fence scopes (any fence orders device-wide).
    # This models scope-blind detectors like HAccRG, which miss both
    # scoped-fence and scoped-atomic races.
    ignore_fence_scopes: bool = False

    # --- §VI extension: explicit acquire/release support ------------------
    acquire_release_extension: bool = False
    release_counter_bits: int = 16

    # --- §VI extension: Independent Thread Scheduling (Volta+) ------------
    # With ITS, lanes of a diverged warp interleave and can race with each
    # other.  The paper's sketch stores the accessing ThreadID in the
    # metadata word's unused bits and makes the program-order check
    # lane-granular.  Off by default (pre-Volta SIMT), as in the paper.
    its_support: bool = False
    lane_id_bits: int = 5

    def __post_init__(self) -> None:
        if self.granularity_bytes not in (4, 8, 16, 32):
            raise ConfigError("granularity_bytes must be 4, 8, 16 or 32")
        if self.cache_ratio < 1:
            raise ConfigError("cache_ratio must be >= 1")
        if self.metadata_cache and self.tag_bits < 1:
            raise ConfigError("metadata cache requires at least 1 tag bit")
        for name in (
            "block_id_bits",
            "warp_id_bits",
            "fence_id_bits",
            "barrier_id_bits",
            "bloom_bits",
            "lock_hash_bits",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.lock_table_entries <= 0:
            raise ConfigError("lock_table_entries must be positive")

    # ------------------------------------------------------------------
    # Canonical configurations used throughout the evaluation
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "DetectorConfig":
        """No race detection (normalization baseline for Figs. 8/9/11)."""
        return cls(mode=DetectorMode.NONE)

    @classmethod
    def scord(cls) -> "DetectorConfig":
        """Full ScoRD: 4B granularity + software metadata cache (1/16)."""
        return cls(mode=DetectorMode.SCORD, metadata_cache=True)

    @classmethod
    def barracuda_like(cls) -> "DetectorConfig":
        """A Barracuda/CURD-class model: scoped fences, scope-blind atomics."""
        return cls(mode=DetectorMode.SCORD, ignore_atomic_scopes=True)

    @classmethod
    def scope_blind(cls) -> "DetectorConfig":
        """An HAccRG-class model: no scope awareness at all."""
        return cls(
            mode=DetectorMode.SCORD,
            ignore_atomic_scopes=True,
            ignore_fence_scopes=True,
        )

    @classmethod
    def base_no_cache(cls, granularity_bytes: int = 4) -> "DetectorConfig":
        """The paper's "base design w/o metadata caching".

        With *granularity_bytes* of 8 or 16 this is also the Table VII
        coarse-granularity baseline.
        """
        return cls(
            mode=DetectorMode.SCORD,
            granularity_bytes=granularity_bytes,
            metadata_cache=False,
        )

    @property
    def metadata_overhead_fraction(self) -> float:
        """Metadata bytes per data byte (the paper's memory-overhead figure).

        8-byte entries over ``granularity_bytes`` of data, divided by
        ``cache_ratio`` when the software cache keeps only one entry per
        that many granules: 4B + 1/16 caching = 12.5%; 4B uncached = 200%.
        """
        ratio = self.cache_ratio if self.metadata_cache else 1
        return 8.0 / (self.granularity_bytes * ratio)
