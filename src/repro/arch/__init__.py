"""Architectural configuration: GPU hardware and detector parameters."""

from repro.arch.config import (
    DramTiming,
    GPUConfig,
    MemoryPreset,
    memory_preset,
)
from repro.arch.detector_config import DetectorConfig, DetectorMode

__all__ = [
    "DetectorConfig",
    "DetectorMode",
    "DramTiming",
    "GPUConfig",
    "MemoryPreset",
    "memory_preset",
]
