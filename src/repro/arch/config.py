"""GPU hardware configuration.

:meth:`GPUConfig.paper_default` carries the exact parameters of the paper's
Table V (15 SMs, 16KB 4-way L1 with 128B lines, 1.5MB 8-way L2, 12 GDDR5
channels, and the listed GDDR5 timing).  Simulating paper-scale inputs on a
paper-scale memory hierarchy in pure Python is infeasible, so experiments use
:meth:`GPUConfig.scaled_default`, which shrinks the input sizes *and* the
cache hierarchy together so the cache-pressure regime — the thing the
normalized overheads of Figs. 8–11 depend on — is preserved.  DESIGN.md §5
documents the scaling.

The Fig. 11 sensitivity sweep ("less L2 capacity and DRAM bandwidth" /
"more") is expressed through :func:`memory_preset`.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.common.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class DramTiming:
    """GDDR5-style timing parameters, in DRAM command-clock cycles.

    Defaults are the paper's Table V values.  The simulator's DRAM model
    derives two service latencies from these: a row-buffer hit costs
    ``t_cl`` plus the burst, and a row-buffer miss additionally pays
    precharge + activate (``t_rp + t_rcd``).
    """

    t_rrd: int = 6
    t_rcd: int = 12
    t_ras: int = 28
    t_rp: int = 12
    t_rc: int = 40
    t_cl: int = 12
    burst_cycles: int = 4

    @property
    def row_hit_latency(self) -> int:
        return self.t_cl + self.burst_cycles

    @property
    def row_miss_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cl + self.burst_cycles


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Full hardware configuration of the simulated GPU."""

    # Execution hierarchy (Table V).
    num_sms: int = 15
    threads_per_warp: int = 32
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 8
    max_warps_per_sm: int = 32

    # L1 data cache, per SM (global data is write-evict, i.e. stores go to
    # L2 and invalidate the local line; this is what makes stale L1 reads —
    # and therefore scoped races — observable).
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    line_size_bytes: int = 128
    l1_hit_latency: int = 28

    # Shared L2 cache.
    l2_size_bytes: int = 1536 * 1024
    l2_assoc: int = 8
    l2_banks: int = 8
    l2_hit_latency: int = 120

    # DRAM.
    dram_channels: int = 12
    dram_timing: DramTiming = dataclasses.field(default_factory=DramTiming)
    dram_row_bytes: int = 1024

    # Interconnect between SMs and L2: a per-direction shared link.
    noc_bytes_per_cycle: int = 32
    noc_base_latency: int = 4
    noc_packet_header_bytes: int = 8

    # Store visibility: per-warp write buffer for weak (non-volatile) global
    # stores.  Entries drain to the SM-local view on a block fence and to
    # the device-shared backing store on a device fence; when the buffer
    # exceeds this capacity the oldest entry is evicted to the SM-local
    # view.  See repro.mem for the full visibility model.
    write_buffer_capacity: int = 8

    # Scratchpad.
    scratchpad_words_per_block: int = 4096
    scratchpad_latency: int = 2

    # Livelock guard: abort if a warp issues this many consecutive
    # operations without any other warp making progress.
    max_spin_iterations: int = 2_000_000

    def __post_init__(self) -> None:
        if self.threads_per_warp <= 0:
            raise ConfigError("threads_per_warp must be positive")
        if self.line_size_bytes % 4:
            raise ConfigError("line size must be a multiple of the 4B word")
        for name in ("l1_size_bytes", "l2_size_bytes"):
            size = getattr(self, name)
            if size % (self.line_size_bytes * 1):
                raise ConfigError(f"{name} must be a multiple of the line size")
        if self.l1_size_bytes // self.line_size_bytes < self.l1_assoc:
            raise ConfigError("L1 has fewer lines than its associativity")
        if self.l2_size_bytes // self.line_size_bytes < self.l2_assoc:
            raise ConfigError("L2 has fewer lines than its associativity")
        if self.num_sms <= 0 or self.dram_channels <= 0 or self.l2_banks <= 0:
            raise ConfigError("structural counts must be positive")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls) -> "GPUConfig":
        """The exact Table V configuration."""
        return cls()

    @classmethod
    def scaled_default(cls, num_sms: int = 8) -> "GPUConfig":
        """The configuration used by the experiment harness.

        Inputs in this reproduction are scaled down by roughly three orders
        of magnitude (DESIGN.md §5), so the cache hierarchy is scaled with
        them: 2KB L1s and a 48KB L2 with 32B lines keep the working sets of
        the scaled ScoR applications larger than the caches, as in the
        paper's setup.
        """
        return cls(
            num_sms=num_sms,
            max_blocks_per_sm=8,
            max_warps_per_sm=32,
            threads_per_warp=8,
            l1_size_bytes=2 * 1024,
            l1_assoc=4,
            line_size_bytes=32,
            l1_hit_latency=12,
            l2_size_bytes=48 * 1024,
            l2_assoc=8,
            l2_banks=8,
            l2_hit_latency=40,
            dram_channels=8,
            noc_bytes_per_cycle=16,
            noc_base_latency=4,
            noc_packet_header_bytes=8,
            scratchpad_words_per_block=4096,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def words_per_line(self) -> int:
        return self.line_size_bytes // 4

    @property
    def l1_sets(self) -> int:
        return self.l1_size_bytes // (self.line_size_bytes * self.l1_assoc)

    @property
    def l2_sets(self) -> int:
        return self.l2_size_bytes // (self.line_size_bytes * self.l2_assoc)

    def with_memory_scale(self, l2_scale: float, channel_scale: float) -> "GPUConfig":
        """Return a copy with L2 capacity and DRAM channel count scaled.

        Used by the Fig. 11 sensitivity sweep.  The scaled L2 size is
        rounded to a whole number of sets so the configuration stays valid.
        """
        line_x_assoc = self.line_size_bytes * self.l2_assoc
        new_sets = max(1, round(self.l2_sets * l2_scale))
        new_channels = max(1, round(self.dram_channels * channel_scale))
        return dataclasses.replace(
            self,
            l2_size_bytes=new_sets * line_x_assoc,
            dram_channels=new_channels,
        )


class MemoryPreset(enum.Enum):
    """The three memory-resource points of the Fig. 11 sweep."""

    LOW = "low"
    DEFAULT = "default"
    HIGH = "high"


def memory_preset(base: GPUConfig, preset: MemoryPreset) -> GPUConfig:
    """Apply a Fig. 11 memory-resource preset to *base*.

    ``LOW`` quarters L2 capacity and DRAM channels; ``HIGH`` doubles both,
    mirroring the paper's "lower L2 capacity and DRAM bandwidth" /
    "more L2 capacity and bandwidth than the default" bars.
    """
    if preset is MemoryPreset.LOW:
        return base.with_memory_scale(0.25, 0.25)
    if preset is MemoryPreset.HIGH:
        return base.with_memory_scale(2.0, 2.0)
    return base
