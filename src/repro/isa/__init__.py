"""The device instruction vocabulary.

Kernels in this reproduction are Python generator functions that *yield*
operation objects from this subpackage (loads, stores, scoped atomics,
scoped fences, barriers, scratchpad accesses, and compute delays) and receive
load/atomic results back from the simulator.  This mirrors what the ScoRD
hardware observes: a stream of typed, scoped memory operations per thread.
"""

from repro.isa.ops import (
    AcquireLd,
    AtomicOp,
    AtomicRMW,
    Barrier,
    Compute,
    Fence,
    Ld,
    MemOp,
    Op,
    ReleaseSt,
    ShLd,
    ShSt,
    St,
)
from repro.isa.scopes import Scope

__all__ = [
    "AcquireLd",
    "AtomicOp",
    "AtomicRMW",
    "Barrier",
    "Compute",
    "Fence",
    "Ld",
    "MemOp",
    "Op",
    "ReleaseSt",
    "Scope",
    "ShLd",
    "ShSt",
    "St",
]
