"""Synchronization scopes.

CUDA exposes three scopes on atomics and fences — ``block``, ``device`` and
``system`` (paper §II-B).  A scoped operation is only guaranteed to be
visible to threads within that scope.  Like the paper, the reproduction
models ``block`` and ``device``; ``system`` is accepted by the API (it
behaves as ``device`` on a single simulated GPU) so programs written against
the full CUDA surface still run.
"""

from __future__ import annotations

import enum


class Scope(enum.IntEnum):
    """Visibility scope of a synchronization operation.

    The integer ordering encodes inclusion: a wider scope is numerically
    larger, so ``a <= b`` means "scope *a* is no wider than scope *b*".
    """

    BLOCK = 0
    DEVICE = 1
    SYSTEM = 2

    @property
    def is_block(self) -> bool:
        return self is Scope.BLOCK

    def includes(self, other: "Scope") -> bool:
        """True if this scope is at least as wide as *other*."""
        return self >= other

    def narrowed_with(self, other: "Scope") -> "Scope":
        """The narrower of two scopes.

        The effective scope of a composed operation (e.g. a lock built from
        an atomic and a fence) "is equal to the narrowest scope of its
        constituents" (paper §III-A).
        """
        return self if self <= other else other

    def __str__(self) -> str:
        return self.name.lower()
