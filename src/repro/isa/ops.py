"""Operation objects yielded by device threads.

Each class is a small immutable record.  Global-memory operations carry a
byte address (word aligned; the machine is 4-byte word addressed, matching
ScoRD's default 4-byte tracking granularity) plus the qualifiers the detector
cares about: scope for atomics/fences and the *strong* (``volatile``)
qualifier for plain loads/stores.

``Compute`` is a pure timing operation: it occupies the issuing warp for a
number of cycles without touching memory.  Applications use it to model the
ALU work between memory operations (e.g. the per-vertex work in graph
coloring), which is what creates the load imbalance that work stealing
exploits.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.scopes import Scope


class AtomicOp(enum.Enum):
    """Read-modify-write flavors (the CUDA ``atomic*`` family)."""

    ADD = "add"
    SUB = "sub"
    EXCH = "exch"
    CAS = "cas"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"


class Op:
    """Base class for everything a kernel may yield."""

    __slots__ = ()


class MemOp(Op):
    """Base class for global-memory operations (checked by the detector)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr


class Ld(MemOp):
    """Global-memory load.  ``strong=True`` models a ``volatile`` load that
    bypasses the (non-coherent) L1 cache."""

    __slots__ = ("strong",)

    def __init__(self, addr: int, strong: bool = False):
        super().__init__(addr)
        self.strong = strong

    def __repr__(self) -> str:
        qual = ", strong" if self.strong else ""
        return f"Ld(0x{self.addr:x}{qual})"


class St(MemOp):
    """Global-memory store.  ``strong=True`` models a ``volatile`` store."""

    __slots__ = ("value", "strong")

    def __init__(self, addr: int, value: int, strong: bool = False):
        super().__init__(addr)
        self.value = value
        self.strong = strong

    def __repr__(self) -> str:
        qual = ", strong" if self.strong else ""
        return f"St(0x{self.addr:x}, {self.value}{qual})"


class AtomicRMW(MemOp):
    """Scoped atomic read-modify-write on global memory.

    Atomics are inherently *strong* operations (paper §II-B): they take
    effect at the level of cache implied by their scope, bypassing
    intermediate non-coherent caches.  ``compare`` is only meaningful for
    :attr:`AtomicOp.CAS`.
    """

    __slots__ = ("op", "operand", "scope", "compare")

    def __init__(
        self,
        addr: int,
        op: AtomicOp,
        operand: int,
        scope: Scope = Scope.DEVICE,
        compare: Optional[int] = None,
    ):
        super().__init__(addr)
        if op is AtomicOp.CAS and compare is None:
            raise ValueError("AtomicOp.CAS requires a compare value")
        self.op = op
        self.operand = operand
        self.scope = scope
        self.compare = compare

    @property
    def strong(self) -> bool:
        return True

    def __repr__(self) -> str:
        extra = f", cmp={self.compare}" if self.op is AtomicOp.CAS else ""
        return (
            f"Atomic{self.op.value.capitalize()}"
            f"(0x{self.addr:x}, {self.operand}, {self.scope}{extra})"
        )


class AcquireLd(MemOp):
    """Scoped acquire load (PTX 6.0 ``ld.acquire``; paper §VI).

    Functionally a strong load; to a detector with the acquire/release
    extension enabled it is a synchronization access of the given scope.
    """

    __slots__ = ("scope",)

    def __init__(self, addr: int, scope: Scope = Scope.DEVICE):
        super().__init__(addr)
        self.scope = scope

    @property
    def strong(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"AcquireLd(0x{self.addr:x}, {self.scope})"


class ReleaseSt(MemOp):
    """Scoped release store (PTX 6.0 ``st.release``; paper §VI).

    Orders the warp's prior writes (like a fence of the same scope) and
    then performs a strong store that synchronization-aware detection
    treats as a sync access.
    """

    __slots__ = ("value", "scope")

    def __init__(self, addr: int, value: int, scope: Scope = Scope.DEVICE):
        super().__init__(addr)
        self.value = value
        self.scope = scope

    @property
    def strong(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ReleaseSt(0x{self.addr:x}, {self.value}, {self.scope})"


class Fence(Op):
    """Scoped memory fence (``__threadfence_block`` / ``__threadfence``)."""

    __slots__ = ("scope",)

    def __init__(self, scope: Scope = Scope.DEVICE):
        self.scope = scope

    def __repr__(self) -> str:
        return f"Fence({self.scope})"


class Barrier(Op):
    """Block-wide execution + memory barrier (``__syncthreads``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Barrier()"


class ShLd(Op):
    """Scratchpad (CUDA ``__shared__``) load; *offset* is a word index."""

    __slots__ = ("offset",)

    def __init__(self, offset: int):
        self.offset = offset

    def __repr__(self) -> str:
        return f"ShLd({self.offset})"


class ShSt(Op):
    """Scratchpad store; *offset* is a word index."""

    __slots__ = ("offset", "value")

    def __init__(self, offset: int, value: int):
        self.offset = offset
        self.value = value

    def __repr__(self) -> str:
        return f"ShSt({self.offset}, {self.value})"


class Compute(Op):
    """Occupy the warp's issue slot for *cycles* cycles (ALU work)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"
