"""The flight recorder: bounded capture of the per-access event stream.

Race *detection* answers "did these two accesses race"; race *forensics*
needs the events around the verdict — what each warp loaded, stored,
fenced and waited on, in simulated order.  The flight recorder is that
capture layer: a bounded, sampling-aware event log fed by a delegating
detector wrapper (:class:`repro.scord.capture.FlightCapture`), exported
as canonical JSONL and as Chrome-trace instants keyed to the telemetry
sim-timeline.

Two capture modes:

* ``ring`` (default) — a fixed-capacity ring buffer; oldest events are
  evicted, like a hardware flight recorder.  Bounded memory on runs of
  any length.
* ``full`` — keep everything (short runs, golden fixtures).

Sync events (fences, barriers, kernel boundaries) and race events are
always recorded; plain access events honor ``sample_interval`` so long
campaigns can keep a sparse access context cheaply.

The **NULL path is zero-cost by construction**: when flight capture is
off, no wrapper is installed around the detector and the engine hot
path is byte-for-byte the PR 4 fast path — there is no per-access
branch to pay.  :data:`NULL_FLIGHT` exists for the layers above (CLI,
runner) so ``telemetry.flight`` is always safe to touch.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

#: bump when the JSONL event shape changes incompatibly
FLIGHT_SCHEMA = "flight-log/v1"

#: access-event kinds (mirrors AccessKind values) vs always-on events
ACCESS_KINDS = ("ld", "st", "atom")
SYNC_KINDS = ("fence", "barrier", "kernel")


@dataclasses.dataclass(frozen=True)
class FlightConfig:
    """How the recorder captures.

    *mode* is ``"ring"`` or ``"full"``; *capacity* bounds the ring;
    *sample_interval* records every Nth plain access event (1 = all;
    sync and race events are never sampled out).
    """

    mode: str = "ring"
    capacity: int = 65536
    sample_interval: int = 1

    def __post_init__(self):
        if self.mode not in ("ring", "full"):
            raise ValueError(f"flight mode must be ring|full, not {self.mode!r}")
        if self.capacity < 1:
            raise ValueError("flight capacity must be >= 1")
        if self.sample_interval < 1:
            raise ValueError("flight sample_interval must be >= 1")

    def to_dict(self) -> dict:
        """Wire form (campaign/pool worker payloads)."""
        return {
            "mode": self.mode,
            "capacity": self.capacity,
            "sample_interval": self.sample_interval,
        }

    @staticmethod
    def from_dict(payload: dict) -> "FlightConfig":
        return FlightConfig(
            mode=payload.get("mode", "ring"),
            capacity=int(payload.get("capacity", 65536)),
            sample_interval=int(payload.get("sample_interval", 1)),
        )


class FlightEvent:
    """One captured event (access, sync, or race verdict)."""

    __slots__ = (
        "cycle", "kind", "block_id", "warp_id", "addr", "scope",
        "strong", "pc", "array", "lane_id", "extra",
    )

    def __init__(
        self,
        cycle: int,
        kind: str,
        block_id: int,
        warp_id: int,
        addr: Optional[int] = None,
        scope: Optional[str] = None,
        strong: Optional[bool] = None,
        pc: Optional[Tuple[str, int]] = None,
        array: Optional[str] = None,
        lane_id: Optional[int] = None,
        extra: Optional[dict] = None,
    ):
        self.cycle = cycle
        self.kind = kind
        self.block_id = block_id
        self.warp_id = warp_id
        self.addr = addr
        self.scope = scope
        self.strong = strong
        self.pc = pc
        self.array = array
        self.lane_id = lane_id
        self.extra = extra

    def to_dict(self) -> dict:
        """JSON-friendly form; unset optional fields are omitted."""
        out = {
            "cycle": self.cycle,
            "kind": self.kind,
            "block": self.block_id,
            "warp": self.warp_id,
        }
        if self.addr is not None:
            out["addr"] = self.addr
        if self.scope is not None:
            out["scope"] = self.scope
        if self.strong is not None:
            out["strong"] = self.strong
        if self.pc is not None:
            out["pc"] = [self.pc[0], self.pc[1]]
        if self.array is not None:
            out["array"] = self.array
        if self.lane_id is not None:
            out["lane"] = self.lane_id
        if self.extra is not None:
            out["extra"] = self.extra
        return out

    def describe(self) -> str:
        place = f"b{self.block_id}w{self.warp_id}"
        target = self.array or (
            f"0x{self.addr:x}" if self.addr is not None else ""
        )
        bits = [f"[{self.cycle:>8}]", place, self.kind]
        if target:
            bits.append(target)
        if self.scope:
            bits.append(f"scope={self.scope}")
        if self.pc:
            bits.append(f"@{self.pc[0]}:{self.pc[1]}")
        return " ".join(bits)


class FlightRecorder:
    """Bounded event capture with always-on sync/race recording."""

    enabled = True

    def __init__(self, config: Optional[FlightConfig] = None):
        self.config = config if config is not None else FlightConfig()
        if self.config.mode == "ring":
            self.events = deque(maxlen=self.config.capacity)
        else:
            self.events: List[FlightEvent] = []  # type: ignore[no-redef]
        self.recorded = 0
        self.sampled_out = 0
        self.races = 0
        self._tick = 0

    # ------------------------------------------------------------------
    # Capture (called from the FlightCapture detector wrapper)
    # ------------------------------------------------------------------
    def record_access(
        self,
        cycle: int,
        kind: str,
        block_id: int,
        warp_id: int,
        addr: int,
        strong: bool,
        scope: Optional[str],
        pc: Optional[Tuple[str, int]],
        array: Optional[str],
        lane_id: int,
    ) -> None:
        interval = self.config.sample_interval
        if interval > 1:
            self._tick += 1
            if self._tick % interval:
                self.sampled_out += 1
                return
        self.recorded += 1
        self.events.append(FlightEvent(
            cycle, kind, block_id, warp_id,
            addr=addr, scope=scope, strong=strong, pc=pc,
            array=array, lane_id=lane_id,
        ))

    def record_sync(
        self,
        cycle: int,
        kind: str,
        block_id: int,
        warp_id: int,
        scope: Optional[str] = None,
    ) -> None:
        self.recorded += 1
        self.events.append(
            FlightEvent(cycle, kind, block_id, warp_id, scope=scope)
        )

    def record_race(self, cycle: int, info: dict) -> None:
        self.races += 1
        self.recorded += 1
        self.events.append(FlightEvent(
            cycle, "race",
            info.get("block", -1), info.get("warp", -1),
            addr=info.get("addr"),
            array=info.get("array"),
            extra=info,
        ))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring (always 0 in full mode)."""
        return self.recorded - len(self.events)

    def snapshot(self) -> List[FlightEvent]:
        return list(self.events)

    def slice_for(
        self,
        addr: Optional[int] = None,
        warps: Iterable[Tuple[int, int]] = (),
        until: Optional[int] = None,
        limit: int = 64,
    ) -> List[FlightEvent]:
        """Trace slice: events on *addr* or by the given (block, warp)s.

        Keeps the *last* *limit* matching events at or before *until* —
        the context a forensics bundle embeds around a race.
        """
        wanted = set(warps)
        out = []
        for event in self.events:
            if until is not None and event.cycle > until:
                continue
            if (
                (addr is not None and event.addr == addr)
                or (event.block_id, event.warp_id) in wanted
                or event.kind == "barrier" and event.block_id in
                    {b for b, _w in wanted}
            ):
                out.append(event)
        return out[-limit:]

    def last_sync_for(
        self, block_id: int, warp_id: int, until: Optional[int] = None
    ) -> Optional[FlightEvent]:
        """Most recent fence/barrier on (block, warp)'s side of the race.

        Barriers are block-wide, so a barrier in *block_id* counts even
        though it carries no warp identity.
        """
        found = None
        for event in self.events:
            if until is not None and event.cycle > until:
                continue
            if event.kind == "fence" and event.block_id == block_id \
                    and event.warp_id == warp_id:
                found = event
            elif event.kind == "barrier" and event.block_id == block_id:
                found = event
        return found

    def stats(self) -> dict:
        return {
            "mode": self.config.mode,
            "capacity": self.config.capacity,
            "sample_interval": self.config.sample_interval,
            "recorded": self.recorded,
            "live": len(self.events),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "races": self.races,
        }

    def collect_metrics(self) -> Dict[str, float]:
        """``flight.*`` gauges for the telemetry metrics registry."""
        return {
            "flight.events.recorded": float(self.recorded),
            "flight.events.live": float(len(self.events)),
            "flight.events.dropped": float(self.dropped),
            "flight.events.sampled_out": float(self.sampled_out),
            "flight.races": float(self.races),
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def write_jsonl(self, path) -> None:
        """Canonical JSONL: one header line, then one line per event."""
        with open(path, "w") as handle:
            header = {"schema": FLIGHT_SCHEMA, **self.stats()}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(
                    json.dumps(event.to_dict(), sort_keys=True) + "\n"
                )

    def chrome_events(self, track: int = 0) -> List[dict]:
        """Chrome-trace instants on the telemetry sim-timeline.

        Emitted with the same pid (:data:`~repro.telemetry.tracing.SIM_PID`)
        and track scheme as the tracer's ``sim_instant`` events, so a
        merged trace shows accesses under the kernel spans.
        """
        from repro.telemetry.tracing import SIM_PID

        out = []
        for event in self.events:
            args = {k: v for k, v in event.to_dict().items()
                    if k not in ("cycle", "kind")}
            out.append({
                "name": f"flight:{event.kind}",
                "ph": "i",
                "pid": SIM_PID,
                "tid": track,
                "ts": event.cycle,
                "s": "t",
                "cat": "flight",
                "args": args,
            })
        return out

    def export(self, path, chrome_path=None, track: int = 0) -> List[str]:
        """Write the JSONL log (and optionally a standalone Chrome trace)."""
        written = [os.fspath(path)]
        self.write_jsonl(path)
        if chrome_path:
            with open(chrome_path, "w") as handle:
                json.dump({"traceEvents": self.chrome_events(track)}, handle)
            written.append(os.fspath(chrome_path))
        return written


class NullFlightRecorder(FlightRecorder):
    """Capture disabled: every hook is a no-op, nothing is retained."""

    enabled = False

    def __init__(self):
        super().__init__(FlightConfig(mode="full"))

    def record_access(self, *args, **kwargs) -> None:
        pass

    def record_sync(self, *args, **kwargs) -> None:
        pass

    def record_race(self, cycle: int, info: dict) -> None:
        pass


#: the shared do-nothing recorder (safe to pass everywhere)
NULL_FLIGHT = NullFlightRecorder()
