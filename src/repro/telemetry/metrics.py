"""The metrics registry: named instruments, collectors, and exporters.

One :class:`MetricsRegistry` per telemetry context unifies every number
the stack produces — the engine's :class:`~repro.common.stats.CounterBag`
counters, timing-model busy cycles, detector statistics (Bloom fill,
metadata occupancy, races flagged), scheduler health, and experiment
throughput — behind three instrument kinds:

* :class:`Counter`   — monotonically increasing totals;
* :class:`Gauge`     — point-in-time values;
* :class:`Histogram` — bucketed distributions (e.g. unit latencies).

Metric names follow ``layer.component.metric`` (``mem.l1.hit.data``,
``timing.dram.busy_cycles``, ``scord.detector.checks``,
``exp.unit.seconds``).  Instruments may carry **labels**
(``registry.counter("exp.unit.seconds", shard="3")``), which export as
Prometheus label sets.

Legacy ``CounterBag`` names keep working: :meth:`MetricsRegistry.bind_bag`
is the thin adapter that snapshots a bag through its single snapshot
path (``as_dict()``) at collect time — zero overhead on the simulator's
hot path — canonicalizing each name onto the layered scheme while
:meth:`value` still resolves the old spelling (``l1.hit.data`` →
``mem.l1.hit.data``).

Exports: :meth:`to_json` and Prometheus text format
(:meth:`to_prometheus`), both deterministic (sorted) for golden tests.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: first-path-segment -> layer, for canonicalizing legacy CounterBag names
_LAYER_BY_PREFIX = {
    "l1": "mem",
    "l2": "mem",
    "wb": "mem",
    "vis": "mem",
    "dram": "timing",
    "noc": "timing",
    "detector": "scord",
    "sched": "engine",
    "gpu": "engine",
}

#: default histogram buckets (seconds-flavored, generous dynamic range)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9eE+.\-]+(\s[0-9]+)?$"
)


def canonical_counter_name(name: str) -> str:
    """Map a legacy ``CounterBag`` name onto ``layer.component.metric``.

    >>> canonical_counter_name("l1.hit.data")
    'mem.l1.hit.data'
    >>> canonical_counter_name("detector.checks")
    'scord.detector.checks'
    >>> canonical_counter_name("custom.thing")
    'engine.custom.thing'
    """
    head = name.split(".", 1)[0]
    layer = _LAYER_BY_PREFIX.get(head, "engine")
    return f"{layer}.{name}"


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    return "repro_" + _PROM_BAD.sub("_", name)


def validate_prometheus(text: str) -> List[str]:
    """Best-effort exposition-format check; returns problems (empty = ok)."""
    problems = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        if not _PROM_LINE.match(line):
            problems.append(f"line {lineno}: unparsable sample {line!r}")
    return problems


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _flat_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A bucketed distribution (cumulative buckets, Prometheus-style)."""

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Instrument factory, collector hub, and exporter."""

    def __init__(self):
        self._instruments: Dict[Tuple[str, tuple], object] = {}
        self._collectors: List[Callable[[], Dict[str, float]]] = []
        self._keyed_collectors: Dict[str, Callable[[], Dict[str, float]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).kind}, not {cls.kind}"
                )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Collectors — pull-style sources read at snapshot time
    # ------------------------------------------------------------------
    def register_collector(
        self, collect: Callable[[], Dict[str, float]],
        key: Optional[str] = None,
    ) -> None:
        """Add a callable returning ``{metric_name: value}`` gauges.

        A *key* makes the registration **replacing**: a later collector
        registered under the same key supersedes the earlier one.  A
        campaign simulating hundreds of GPUs binds each under one key,
        so the registry holds live gauges for the most recent machine
        instead of accumulating collectors (and keeping dead GPUs
        reachable) without bound.
        """
        with self._lock:
            if key is not None:
                self._keyed_collectors[key] = collect
            else:
                self._collectors.append(collect)

    def bind_bag(
        self, bag, canonicalize=canonical_counter_name,
        key: Optional[str] = None,
    ) -> None:
        """Adapt a :class:`~repro.common.stats.CounterBag` into the registry.

        The bag is *not* copied and pays nothing per ``add``: its
        ``as_dict()`` snapshot is read lazily at export time, each legacy
        name mapped through *canonicalize* onto the layered scheme.
        """

        def collect() -> Dict[str, float]:
            return {
                canonicalize(name): float(value)
                for name, value in bag.as_dict().items()
            }

        self.register_collector(collect, key=key)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def samples(self) -> List[Tuple[str, str, float]]:
        """Every current sample as ``(flat_name, kind, value)``, sorted.

        Histograms contribute ``<name>.count``, ``<name>.sum`` and
        ``<name>.mean`` pseudo-samples here; the bucket vector only
        appears in the Prometheus exposition.
        """
        out: List[Tuple[str, str, float]] = []
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors) + list(
                self._keyed_collectors.values()
            )
        for instrument in instruments:
            flat = _flat_name(instrument.name, instrument.labels)
            if isinstance(instrument, Histogram):
                out.append((flat + ".count", "histogram", float(instrument.count)))
                out.append((flat + ".sum", "histogram", instrument.total))
                out.append((flat + ".mean", "histogram", instrument.mean))
            else:
                out.append((flat, instrument.kind, instrument.value))
        for collect in collectors:
            try:
                collected = collect()
            except Exception:
                continue  # a dead collector must not kill the export
            for name, value in collected.items():
                out.append((name, "gauge", float(value)))
        out.sort(key=lambda item: item[0])
        return out

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view of everything currently known."""
        return {name: value for name, _kind, value in self.samples()}

    def value(self, name: str, default: Optional[float] = None) -> float:
        """Look up one metric, resolving legacy ``CounterBag`` names.

        ``value("l1.hit.data")`` finds ``mem.l1.hit.data`` — the
        deprecation shim that keeps pre-telemetry counter names working.
        """
        snap = self.snapshot()
        if name in snap:
            return snap[name]
        alias = canonical_counter_name(name)
        if alias in snap:
            return snap[alias]
        if default is not None:
            return default
        raise KeyError(
            f"no metric {name!r} (tried alias {alias!r}); "
            f"{len(snap)} metrics registered"
        )

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Deterministic JSON document of every sample."""
        return {
            "schema": 1,
            "metrics": {
                name: value for name, _kind, value in self.samples()
            },
        }

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (spec 0.0.4)."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def type_line(prom: str, kind: str) -> None:
            if seen_types.get(prom) is None:
                seen_types[prom] = kind
                lines.append(f"# TYPE {prom} {kind}")

        with self._lock:
            instruments = sorted(
                self._instruments.values(), key=lambda i: (i.name, i.labels)
            )
            collectors = list(self._collectors) + list(
                self._keyed_collectors.values()
            )
        for instrument in instruments:
            prom = prometheus_name(instrument.name)
            labels = "".join(
                f'{k}="{v}",' for k, v in instrument.labels
            ).rstrip(",")
            label_part = f"{{{labels}}}" if labels else ""
            if isinstance(instrument, Histogram):
                type_line(prom, "histogram")
                cumulative = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    cumulative = count
                    le = (
                        f'le="{bound:g}"' if labels == ""
                        else f'{labels},le="{bound:g}"'
                    )
                    lines.append(f"{prom}_bucket{{{le}}} {cumulative}")
                le_inf = (
                    'le="+Inf"' if labels == "" else f'{labels},le="+Inf"'
                )
                lines.append(f"{prom}_bucket{{{le_inf}}} {instrument.count}")
                lines.append(f"{prom}_sum{label_part} {instrument.total:g}")
                lines.append(f"{prom}_count{label_part} {instrument.count}")
            else:
                type_line(prom, instrument.kind)
                lines.append(f"{prom}{label_part} {instrument.value:g}")
        collected: Dict[str, float] = {}
        for collect in collectors:
            try:
                collected.update(collect())
            except Exception:
                continue
        for name in sorted(collected):
            prom = prometheus_name(name)
            type_line(prom, "gauge")
            lines.append(f"{prom} {collected[name]:g}")
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_prometheus())
