"""Unified telemetry: tracing, metrics, and profiling for the whole stack.

One :class:`Telemetry` object bundles the three observability surfaces
and is threaded (optionally — everything accepts ``telemetry=None``)
through the simulator, the detector, and the experiment harness:

* :class:`~repro.telemetry.tracing.Tracer` — hierarchical spans
  (``campaign → exhibit → unit → kernel → warp-step``) exported as
  Chrome ``trace_event`` JSON (Perfetto-loadable) and compact JSONL;
* :class:`~repro.telemetry.metrics.MetricsRegistry` — named
  Counter/Gauge/Histogram instruments plus pull-collectors over the
  legacy :class:`~repro.common.stats.CounterBag`\\ s, exported as JSON
  and Prometheus text format;
* :class:`~repro.telemetry.profile.PhaseProfiler` — per-phase wall time
  and ops/sec, embedded in the campaign manifest.

Quick start::

    from repro import GPU
    from repro.telemetry import Telemetry, TraceConfig

    telemetry = Telemetry(TraceConfig(warp_step_interval=64))
    gpu = GPU(telemetry=telemetry, sample_interval=200)
    gpu.launch(kernel, grid=8, block_dim=32, args=(data,))
    telemetry.export(trace_path="trace.json", metrics_path="metrics.prom")

On the command line, ``scord-experiments table6 --trace trace.json
--metrics-out metrics.prom`` instruments a whole campaign, and
``scord-experiments report --trace trace.json --metrics
metrics.prom.json`` renders the text dashboard.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.telemetry.flight import (
    FLIGHT_SCHEMA,
    NULL_FLIGHT,
    FlightConfig,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    canonical_counter_name,
    validate_prometheus,
)
from repro.telemetry.profile import (
    PhaseProfiler,
    shard_utilization,
    source_latencies,
)
from repro.telemetry.report import render_dashboard
from repro.telemetry.tracing import (
    NULL_TRACER,
    SIM_PID,
    WALL_PID,
    TraceConfig,
    Tracer,
    validate_span_tree,
)

__all__ = [
    "Telemetry",
    "Tracer",
    "TraceConfig",
    "MetricsRegistry",
    "PhaseProfiler",
    "FlightConfig",
    "FlightRecorder",
    "NullFlightRecorder",
    "FLIGHT_SCHEMA",
    "NULL_FLIGHT",
    "NULL_TRACER",
    "WALL_PID",
    "SIM_PID",
    "canonical_counter_name",
    "validate_prometheus",
    "validate_span_tree",
    "shard_utilization",
    "source_latencies",
    "render_dashboard",
]


class Telemetry:
    """The bundle every layer receives: tracer + metrics + profiler."""

    def __init__(
        self,
        trace: Optional[TraceConfig] = None,
        flight: Optional[FlightConfig] = None,
    ):
        config = trace if trace is not None else TraceConfig()
        self.tracer: Tracer = Tracer(config) if config.enabled else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.profiler = PhaseProfiler()
        self.metrics.register_collector(self.profiler.collect_metrics)
        # Optional flight recorder (see repro.telemetry.flight).  When
        # absent this is the shared NULL recorder, and the engine installs
        # no capture wrapper — the hot path stays the uninstrumented fast
        # path.
        self.flight: FlightRecorder = (
            FlightRecorder(flight) if flight is not None else NULL_FLIGHT
        )
        if self.flight.enabled:
            # The collector reads through self.flight so callers that
            # swap in a fresh per-unit recorder (the Runner does) keep
            # the export pointed at the live one.
            self.metrics.register_collector(
                lambda: self.flight.collect_metrics(),
                key="telemetry.flight",
            )

    @property
    def enabled(self) -> bool:
        """True when the tracer records (metrics always accumulate)."""
        return self.tracer.enabled

    @staticmethod
    def disabled() -> "Telemetry":
        """A telemetry bundle with tracing off — near-zero overhead.

        Metrics instruments and collectors still work (they are pull
        based and cost nothing until exported); only event recording is
        disabled.
        """
        return Telemetry(TraceConfig(enabled=False))

    # ------------------------------------------------------------------
    def export(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        flight_path: Optional[str] = None,
    ) -> list:
        """Write the run's artifacts; returns the paths written.

        *trace_path* receives the Chrome trace JSON plus a sibling
        ``.jsonl`` stream; *metrics_path* receives the Prometheus text
        exposition plus a sibling ``.json`` document; *flight_path*
        receives the flight recorder's JSONL event log (when capture is
        enabled).
        """
        written = []
        if trace_path:
            self.tracer.write_chrome(trace_path)
            written.append(os.fspath(trace_path))
            jsonl = os.path.splitext(os.fspath(trace_path))[0] + ".jsonl"
            self.tracer.write_jsonl(jsonl)
            written.append(jsonl)
        if flight_path and self.flight.enabled:
            self.flight.write_jsonl(flight_path)
            written.append(os.fspath(flight_path))
        if metrics_path:
            self.metrics.write_prometheus(metrics_path)
            written.append(os.fspath(metrics_path))
            as_json = os.fspath(metrics_path) + ".json"
            self.metrics.write_json(as_json)
            written.append(as_json)
        return written
