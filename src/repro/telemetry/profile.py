"""Per-phase wall-time and throughput accounting.

Where the tracer answers "what happened when", the profiler answers
"where did the time go": every instrumented phase (``engine.launch``,
``exp.simulate``, ``exhibit.table6``, ``campaign.dump`` ...) accumulates
wall seconds, call counts and an optional op count, from which ops/sec
falls out.  The campaign manifest embeds :meth:`PhaseProfiler.as_dict`
so a finished run carries its own phase breakdown.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional


class _PhaseStat:
    __slots__ = ("seconds", "calls", "ops")

    def __init__(self):
        self.seconds = 0.0
        self.calls = 0
        self.ops = 0


class _PhaseHandle:
    """Yielded by :meth:`PhaseProfiler.phase`; lets the body report ops."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops = 0

    def add_ops(self, amount: int) -> None:
        self.ops += amount


class PhaseProfiler:
    """Accumulates wall time per named phase (thread-safe)."""

    def __init__(self):
        self._stats: Dict[str, _PhaseStat] = {}
        self._lock = threading.Lock()

    @contextmanager
    def phase(self, name: str):
        """Time one phase; ``handle.add_ops(n)`` feeds the ops/sec rate."""
        handle = _PhaseHandle()
        started = time.perf_counter()
        try:
            yield handle
        finally:
            self.add(name, time.perf_counter() - started, ops=handle.ops)

    def add(self, name: str, seconds: float, ops: int = 0) -> None:
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = _PhaseStat()
            stat.seconds += seconds
            stat.calls += 1
            stat.ops += ops

    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        with self._lock:
            stat = self._stats.get(name)
            return stat.seconds if stat else 0.0

    def as_dict(self) -> Dict[str, dict]:
        """``{phase: {seconds, calls, ops, ops_per_sec}}``, sorted by cost."""
        with self._lock:
            items = sorted(
                self._stats.items(), key=lambda kv: -kv[1].seconds
            )
            out = {}
            for name, stat in items:
                entry = {
                    "seconds": round(stat.seconds, 6),
                    "calls": stat.calls,
                }
                if stat.ops:
                    entry["ops"] = stat.ops
                    if stat.seconds > 0:
                        entry["ops_per_sec"] = round(
                            stat.ops / stat.seconds, 1
                        )
                out[name] = entry
            return out

    def collect_metrics(self) -> Dict[str, float]:
        """Registry-collector view: ``profile.<phase>.seconds`` gauges."""
        out: Dict[str, float] = {}
        with self._lock:
            for name, stat in self._stats.items():
                out[f"profile.{name}.seconds"] = round(stat.seconds, 6)
                out[f"profile.{name}.calls"] = float(stat.calls)
        return out

    def render(self, indent: str = "") -> str:
        """Text table of the phase breakdown, costliest first."""
        phases = self.as_dict()
        if not phases:
            return f"{indent}(no phases recorded)"
        width = max(len(name) for name in phases)
        lines = []
        for name, entry in phases.items():
            rate = (
                f"  {entry['ops_per_sec']:>12,.0f} ops/s"
                if "ops_per_sec" in entry
                else ""
            )
            lines.append(
                f"{indent}{name:<{width}}  {entry['seconds']:>9.3f}s  "
                f"x{entry['calls']:<5d}{rate}"
            )
        return "\n".join(lines)


def shard_utilization(
    outcomes, elapsed_seconds: float
) -> Dict[str, dict]:
    """Per-shard busy-time profile of a parallel campaign.

    *outcomes* is an iterable with ``shard`` and ``seconds`` attributes
    (:class:`repro.experiments.parallel.UnitOutcome`).  Utilization is
    busy seconds over campaign wall seconds — a shard at 0.10 spent 90%
    of the campaign idle (work starvation or one long unit elsewhere).
    """
    shards: Dict[int, dict] = {}
    for outcome in outcomes:
        entry = shards.setdefault(
            outcome.shard, {"units": 0, "busy_seconds": 0.0}
        )
        entry["units"] += 1
        entry["busy_seconds"] += outcome.seconds
    out: Dict[str, dict] = {}
    for shard in sorted(shards):
        entry = shards[shard]
        entry["busy_seconds"] = round(entry["busy_seconds"], 3)
        if elapsed_seconds > 0:
            entry["utilization"] = round(
                entry["busy_seconds"] / elapsed_seconds, 3
            )
        out[str(shard)] = entry
    return out


def source_latencies(outcomes) -> Dict[str, dict]:
    """Mean unit latency by source (``cache`` hit vs executed ``run``)."""
    groups: Dict[str, list] = {}
    for outcome in outcomes:
        source = outcome.source if outcome.failure is None else "failed"
        groups.setdefault(source, []).append(outcome.seconds)
    out = {}
    for source in sorted(groups):
        seconds = groups[source]
        out[source] = {
            "units": len(seconds),
            "total_seconds": round(sum(seconds), 3),
            "mean_seconds": round(sum(seconds) / len(seconds), 4),
        }
    return out
