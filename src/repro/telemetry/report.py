"""The ``report`` dashboard: render a run's telemetry as text.

``scord-experiments report --trace trace.json --metrics metrics.prom.json
--manifest manifest.json`` loads the artifacts a traced campaign wrote
and renders the three views people actually reach for first:

* **top counters** — the largest metric values, grouped by layer;
* **phase breakdown** — wall-time per span name, aggregated over the
  trace's wall-clock timeline (plus the manifest's profiler phases);
* **timelines** — sparklines of the simulated-cycles counter tracks
  (NoC/DRAM/L2 utilization et al.), the text twin of the Perfetto view.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.tracing import SIM_PID, WALL_PID

_SPARKS = "▁▂▃▄▅▆▇█"


def _spark(values: List[float], width: int = 60) -> str:
    if not values:
        return "(empty)"
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):int((i + 1) * bucket) or 1])
            / max(1, len(values[int(i * bucket):int((i + 1) * bucket)]))
            for i in range(width)
        ]
    top = max(values) or 1.0
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int(v / top * len(_SPARKS)))]
        for v in values
    )


def _events_of(trace: dict) -> List[dict]:
    if isinstance(trace, dict):
        return trace.get("traceEvents", [])
    return list(trace)


def top_counters(
    metrics: Dict[str, float], top: int = 20
) -> List[str]:
    entries = sorted(
        ((value, name) for name, value in metrics.items()),
        key=lambda item: (-abs(item[0]), item[1]),
    )[:top]
    if not entries:
        return ["  (no metrics)"]
    width = max(len(name) for _value, name in entries)
    lines = []
    for value, name in entries:
        rendered = f"{value:,.0f}" if value == int(value) else f"{value:,.4f}"
        lines.append(f"  {name:<{width}}  {rendered:>16}")
    return lines


#: metric families rendered as their own dashboard blocks (the generic
#: top-counters table buries small-but-important families under engine
#: counters that count in the millions)
_FAMILY_TITLES = {
    "fuzz": "fuzz campaign (fuzz.*):",
    "flight": "flight recorder (flight.*):",
    "forensics": "race forensics (forensics.*):",
    "mc": "model checking (mc.*):",
}


def family_counters(
    metrics: Dict[str, float], family: str
) -> List[str]:
    """All counters of one dotted family, rendered like top_counters."""
    prefix = family + "."
    rows = sorted(
        (name, value) for name, value in metrics.items()
        if name == family or name.startswith(prefix)
    )
    if not rows:
        return []
    width = max(len(name) for name, _value in rows)
    lines = []
    for name, value in rows:
        rendered = f"{value:,.0f}" if value == int(value) else f"{value:,.4f}"
        lines.append(f"  {name:<{width}}  {rendered:>16}")
    return lines


def phase_breakdown(events: List[dict], top: int = 15) -> List[str]:
    totals: Dict[str, dict] = {}
    for event in events:
        if event.get("ph") != "X" or event.get("pid") != WALL_PID:
            continue
        entry = totals.setdefault(
            event["name"], {"us": 0.0, "calls": 0}
        )
        entry["us"] += event.get("dur", 0.0)
        entry["calls"] += 1
    if not totals:
        return ["  (no wall-clock spans in trace)"]
    ranked = sorted(totals.items(), key=lambda kv: -kv[1]["us"])[:top]
    width = max(len(name) for name, _entry in ranked)
    lines = []
    for name, entry in ranked:
        lines.append(
            f"  {name:<{width}}  {entry['us'] / 1e6:>9.3f}s  "
            f"x{entry['calls']}"
        )
    return lines


def counter_timelines(events: List[dict], width: int = 60) -> List[str]:
    series: Dict[str, List[tuple]] = {}
    for event in events:
        if event.get("ph") != "C" or event.get("pid") != SIM_PID:
            continue
        for key, value in event.get("args", {}).items():
            name = (
                event["name"]
                if key in ("value",)
                else f"{event['name']}.{key}"
            )
            series.setdefault(name, []).append((event.get("ts", 0), value))
    if not series:
        return ["  (no counter tracks in trace)"]
    lines = []
    name_width = max(len(name) for name in series)
    for name in sorted(series):
        points = sorted(series[name])
        values = [float(v) for _ts, v in points]
        peak = max(values) if values else 0.0
        lines.append(
            f"  {name:<{name_width}} {_spark(values, width)} "
            f"peak {peak:g}"
        )
    return lines


def unit_summary(events: List[dict], slowest: int = 5) -> List[str]:
    units = [
        event
        for event in events
        if event.get("ph") == "X"
        and event.get("pid") == WALL_PID
        and event.get("name", "").startswith("unit:")
    ]
    if not units:
        return ["  (no unit spans in trace)"]
    total_us = sum(event.get("dur", 0.0) for event in units)
    lines = [
        f"  {len(units)} unit(s), {total_us / 1e6:.3f}s total, "
        f"{total_us / len(units) / 1e6:.3f}s mean"
    ]
    ranked = sorted(units, key=lambda e: -e.get("dur", 0.0))[:slowest]
    for event in ranked:
        lines.append(
            f"    {event['name']:<40} {event.get('dur', 0.0) / 1e6:>8.3f}s"
        )
    return lines


def render_dashboard(
    trace: Optional[dict] = None,
    metrics: Optional[dict] = None,
    manifest: Optional[dict] = None,
    top: int = 20,
    width: int = 60,
) -> str:
    """Assemble the text dashboard from whichever artifacts exist."""
    sections: List[str] = ["=== telemetry report ==="]
    if manifest is not None:
        counts = manifest.get("counts", {})
        status = "ok" if manifest.get("ok") else "FAILURES"
        sections.append(
            f"campaign: {status}, "
            f"{counts.get('unique_simulations', '?')} simulation(s) "
            f"({counts.get('fresh_runs', 0)} fresh, "
            f"{counts.get('resumed_runs', 0)} resumed, "
            f"{counts.get('cached_runs', 0)} cached), "
            f"{manifest.get('elapsed_seconds', '?')}s"
        )
        profile = manifest.get("profile") or {}
        shards = profile.get("shards")
        if shards:
            sections.append("shards:")
            for shard, entry in sorted(shards.items()):
                util = entry.get("utilization")
                util_txt = f" util {util:.0%}" if util is not None else ""
                sections.append(
                    f"  shard {shard}: {entry['units']} unit(s), "
                    f"{entry['busy_seconds']}s busy{util_txt}"
                )
    metric_values = (metrics or {}).get("metrics", metrics) or {}
    if metric_values:
        sections.append("")
        sections.append(f"top {min(top, len(metric_values))} counters:")
        sections.extend(top_counters(metric_values, top=top))
        for family, title in _FAMILY_TITLES.items():
            block = family_counters(metric_values, family)
            if block:
                sections.append("")
                sections.append(title)
                sections.extend(block)
    if trace is not None:
        events = _events_of(trace)
        sections.append("")
        sections.append("phase breakdown (wall-clock spans):")
        sections.extend(phase_breakdown(events))
        sections.append("")
        sections.append("units:")
        sections.extend(unit_summary(events))
        sections.append("")
        sections.append("simulated-cycles counter timelines:")
        sections.extend(counter_timelines(events, width=width))
    if manifest is not None:
        forensics = manifest.get("forensics")
        if forensics:
            sections.append("")
            sections.append("forensics (from manifest):")
            sections.append(
                f"  {forensics.get('units_captured', 0)} unit(s) captured "
                f"({forensics.get('flight_mode', '?')} mode), "
                f"{forensics.get('bundles', 0)} bundle(s), "
                f"{forensics.get('rule_agreement', 0)} agreeing with "
                "the static rule"
            )
            for race_type, count in sorted(
                (forensics.get("units_by_race_type") or {}).items()
            ):
                sections.append(f"    {race_type:<24} {count}")
            if forensics.get("dir"):
                sections.append(f"  bundles under {forensics['dir']}")
        per_worker = (manifest.get("pool") or {}).get("per_worker")
        if per_worker:
            sections.append("")
            sections.append("pool workers:")
            for worker_id, entry in sorted(per_worker.items()):
                state = "alive" if entry.get("alive") else "retired"
                sections.append(
                    f"  worker {worker_id}: {entry.get('units_served', 0)} "
                    f"unit(s), {entry.get('heartbeats_seen', 0)} "
                    f"heartbeat(s), {entry.get('lifetime_seconds', 0)}s "
                    f"({state})"
                )
        phases = (manifest.get("profile") or {}).get("phases")
        if phases:
            sections.append("")
            sections.append("profiler phases (from manifest):")
            name_width = max(len(name) for name in phases)
            for name, entry in phases.items():
                rate = (
                    f"  {entry['ops_per_sec']:,.0f} ops/s"
                    if "ops_per_sec" in entry
                    else ""
                )
                sections.append(
                    f"  {name:<{name_width}}  {entry['seconds']:>9.3f}s  "
                    f"x{entry['calls']}{rate}"
                )
    return "\n".join(sections)
