"""Structured event tracing: hierarchical spans and typed events.

The trace layer records what the stack *did* — a campaign opens a span,
each exhibit opens a child span, each simulation unit a child of that,
each kernel launch a child again, down to (sampled) warp-step instants —
and exports two artifacts:

* **Chrome ``trace_event`` JSON** (:meth:`Tracer.chrome` /
  :meth:`Tracer.write_chrome`): loads directly in ``chrome://tracing``
  or `Perfetto <https://ui.perfetto.dev>`_.  Wall-clock spans live under
  the ``wall-clock`` process; simulator-side events (kernel spans in
  cycles, warp-step samples, fabric-utilization counter tracks) live
  under the ``simulated-cycles`` process so the two timelines never get
  conflated.
* A **compact JSONL stream** (:meth:`Tracer.write_jsonl`): one event per
  line, grep/``jq``-friendly, in the same record shape.

Cost model: a disabled tracer (:data:`NULL_TRACER`, or
``TraceConfig(enabled=False)``) is a handful of no-op methods — call
sites guard with ``tracer.enabled`` or hold ``None`` — so tier-1 runs
pay ~zero for the instrumentation.  Severity and category filters drop
events at *record* time; warp-step instants are sampled (every *N*-th
issue), never unconditional.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: severity ladder for typed events (spans default to "info")
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

#: Chrome trace process ids for the two timelines
WALL_PID = 1
SIM_PID = 2


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """What the tracer records.

    ``warp_step_interval`` enables the deepest layer of the hierarchy:
    every *N*-th warp issue emits a ``warp-step`` instant on the
    simulated timeline (0 disables them — they are high-volume).
    """

    enabled: bool = True
    #: drop events below this severity ("debug" records everything)
    min_level: str = "debug"
    #: record only these span/event categories (None = all)
    categories: Optional[frozenset] = None
    #: sample every Nth warp-step as a sim-timeline instant (0 = off)
    warp_step_interval: int = 0
    #: hard cap on retained events (overflow counted in Tracer.dropped)
    max_events: int = 1_000_000

    @staticmethod
    def parse_filter(spec: Optional[str]) -> "TraceConfig":
        """Build a config from a ``--trace-filter`` expression.

        The grammar is ``key=value[,key=value...]`` with keys:

        * ``level`` — minimum severity (debug/info/warn/error);
        * ``cat``   — ``+``-separated category allowlist (e.g.
          ``cat=exp+engine``);
        * ``steps`` — warp-step sampling interval (integer);
        * ``max``   — event cap.

        >>> TraceConfig.parse_filter("level=info,cat=exp+engine,steps=64")
        ... # doctest: +ELLIPSIS
        TraceConfig(enabled=True, min_level='info', ...)
        """
        if not spec:
            return TraceConfig()
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --trace-filter clause {part!r} (want key=value)"
                )
            key, value = part.split("=", 1)
            key, value = key.strip(), value.strip()
            if key == "level":
                if value not in LEVELS:
                    raise ValueError(
                        f"unknown level {value!r}; want one of "
                        f"{sorted(LEVELS)}"
                    )
                kwargs["min_level"] = value
            elif key == "cat":
                kwargs["categories"] = frozenset(
                    c for c in value.split("+") if c
                )
            elif key == "steps":
                kwargs["warp_step_interval"] = int(value)
            elif key == "max":
                kwargs["max_events"] = int(value)
            else:
                raise ValueError(f"unknown --trace-filter key {key!r}")
        return TraceConfig(**kwargs)


class _ThreadState(threading.local):
    """Per-thread open-span stack (spans never cross threads)."""

    def __init__(self):
        self.stack: List[Tuple[str, str, float, dict]] = []


class Tracer:
    """Records spans and events; exports Chrome trace JSON and JSONL.

    Thread-safe: the parallel campaign executor opens unit spans from
    several dispatcher threads at once; each thread keeps its own span
    stack and shows up as its own ``tid`` track in the trace.
    """

    def __init__(self, config: Optional[TraceConfig] = None):
        self.config = config if config is not None else TraceConfig()
        self.enabled = self.config.enabled
        self._min_level = LEVELS.get(self.config.min_level, 0)
        self._events: List[dict] = []
        self._lock = threading.Lock()
        self._state = _ThreadState()
        self._tids: Dict[int, int] = {}
        self._counter_sources: List[Callable[[], Iterable[tuple]]] = []
        self._t0 = time.perf_counter()
        self._next_sim_track = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording primitives
    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _want(self, level: str, cat: str) -> bool:
        if not self.enabled:
            return False
        if LEVELS.get(level, 0) < self._min_level:
            return False
        categories = self.config.categories
        if categories is not None and cat not in categories:
            return False
        return True

    def _record(self, event: dict) -> None:
        with self._lock:
            if len(self._events) >= self.config.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    # ------------------------------------------------------------------
    # Wall-clock spans and events
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, cat: str = "exp", level: str = "info", **args):
        """Open a wall-clock span; closes (and records) on exit."""
        if not self._want(level, cat):
            yield None
            return
        start = self._now_us()
        self._state.stack.append((name, cat, start, args))
        try:
            yield self
        finally:
            self._state.stack.pop()
            self._record(
                {
                    "ph": "X",
                    "pid": WALL_PID,
                    "tid": self._tid(),
                    "name": name,
                    "cat": cat,
                    "ts": round(start, 1),
                    "dur": round(self._now_us() - start, 1),
                    "args": args,
                }
            )

    def event(
        self, name: str, cat: str = "exp", level: str = "info", **args
    ) -> None:
        """Record a typed instant event on the wall-clock timeline."""
        if not self._want(level, cat):
            return
        self._record(
            {
                "ph": "i",
                "s": "t",
                "pid": WALL_PID,
                "tid": self._tid(),
                "name": name,
                "cat": cat,
                "ts": round(self._now_us(), 1),
                "args": dict(args, level=level),
            }
        )

    def active_stack(self) -> List[str]:
        """The current thread's open spans, outermost first.

        This is what hang diagnostics dump: if a kernel wedges, the
        stack reads e.g. ``['campaign', 'exhibit:table6',
        'unit:UTS/scord', 'kernel:uts_expand']``.
        """
        return [name for name, _cat, _start, _args in self._state.stack]

    # ------------------------------------------------------------------
    # Simulated-cycles timeline
    # ------------------------------------------------------------------
    def alloc_sim_track(self) -> int:
        """Reserve a fresh track (tid) on the simulated timeline.

        Every GPU instance takes one at construction: each simulation's
        cycle clock restarts at 0, so kernels from consecutive runs of a
        campaign would otherwise land on one track and falsely overlap.
        """
        with self._lock:
            track = self._next_sim_track
            self._next_sim_track += 1
        return track

    def sim_span(
        self,
        name: str,
        start_cycle: int,
        end_cycle: int,
        track: int = 0,
        cat: str = "sim",
        level: str = "info",
        **args,
    ) -> None:
        """A completed span on the simulated timeline (ts in cycles)."""
        if not self._want(level, cat):
            return
        self._record(
            {
                "ph": "X",
                "pid": SIM_PID,
                "tid": track,
                "name": name,
                "cat": cat,
                "ts": start_cycle,
                "dur": max(0, end_cycle - start_cycle),
                "args": args,
            }
        )

    def sim_instant(
        self,
        name: str,
        cycle: int,
        track: int = 0,
        cat: str = "sim",
        level: str = "debug",
        **args,
    ) -> None:
        """An instant on the simulated timeline (e.g. a warp-step)."""
        if not self._want(level, cat):
            return
        self._record(
            {
                "ph": "i",
                "s": "t",
                "pid": SIM_PID,
                "tid": track,
                "name": name,
                "cat": cat,
                "ts": cycle,
                "args": args,
            }
        )

    def counter(
        self, name: str, cycle: int, values: Dict[str, float],
        cat: str = "sim",
    ) -> None:
        """A counter-track sample on the simulated timeline."""
        if not self.enabled:
            return
        self._record(
            {
                "ph": "C",
                "pid": SIM_PID,
                "tid": 0,
                "name": name,
                "cat": cat,
                "ts": cycle,
                "args": {k: round(float(v), 4) for k, v in values.items()},
            }
        )

    def add_counter_source(
        self, source: Callable[[], Iterable[tuple]]
    ) -> None:
        """Register a late-bound counter series provider.

        *source* is called at export time and yields ``(name, cycle,
        value)`` triples — how the fabric-utilization sampler's series
        become Perfetto counter tracks without paying anything during
        the run.
        """
        if self.enabled:
            self._counter_sources.append(source)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> List[dict]:
        """Snapshot of every recorded event (counter sources included)."""
        with self._lock:
            events = list(self._events)
        for source in self._counter_sources:
            try:
                series = list(source())
            except Exception:  # a broken source must not kill the export
                continue
            for name, cycle, value in series:
                events.append(
                    {
                        "ph": "C",
                        "pid": SIM_PID,
                        "tid": 0,
                        "name": name,
                        "cat": "sim",
                        "ts": cycle,
                        "args": {"value": round(float(value), 4)},
                    }
                )
        # Open spans (a crash mid-campaign) still export, as begin-only
        # events, so the trace shows where execution was.
        for name, cat, start, args in list(self._state.stack):
            events.append(
                {
                    "ph": "B",
                    "pid": WALL_PID,
                    "tid": self._tid(),
                    "name": name,
                    "cat": cat,
                    "ts": round(start, 1),
                    "args": args,
                }
            )
        return events

    def chrome(self) -> dict:
        """The full Chrome ``trace_event`` document."""
        meta = [
            {
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "wall-clock"},
            },
            {
                "ph": "M",
                "pid": SIM_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "simulated-cycles"},
            },
        ]
        return {
            "traceEvents": meta + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.telemetry",
                "dropped_events": self.dropped,
            },
        }

    def write_chrome(self, path) -> None:
        """Write the Chrome trace JSON (atomic enough for our purposes)."""
        with open(path, "w") as handle:
            json.dump(self.chrome(), handle, separators=(",", ":"))

    def write_jsonl(self, path) -> None:
        """Write the compact one-event-per-line stream."""
        with open(path, "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")


class _NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    A dedicated subclass (rather than ``Tracer(enabled=False)``) keeps
    the disabled hot path to a single attribute check at call sites and
    makes the zero-cost contract explicit and testable.
    """

    def __init__(self):
        super().__init__(TraceConfig(enabled=False))

    @contextlib.contextmanager
    def span(self, name, cat="exp", level="info", **args):  # noqa: D102
        yield None

    def event(self, *args, **kwargs):
        pass

    def alloc_sim_track(self):
        return 0

    def sim_span(self, *args, **kwargs):
        pass

    def sim_instant(self, *args, **kwargs):
        pass

    def counter(self, *args, **kwargs):
        pass

    def add_counter_source(self, source):
        pass

    def active_stack(self):
        return []


#: shared no-op tracer for "telemetry off" paths
NULL_TRACER = _NullTracer()


def validate_span_tree(events: Iterable[dict]) -> List[str]:
    """Check span well-formedness; returns a list of problems (empty = ok).

    Rules checked per ``(pid, tid)`` track:

    * every ``B`` has a matching ``E`` (complete ``X`` events are
      closed by construction);
    * ``X`` spans nest properly — two spans on one track either disjoint
      or one containing the other, never partially overlapping.
    """
    problems: List[str] = []
    by_track: Dict[tuple, List[dict]] = {}
    for event in events:
        if event.get("ph") in ("X", "B", "E"):
            key = (event.get("pid"), event.get("tid"))
            by_track.setdefault(key, []).append(event)
    for key, track in sorted(by_track.items()):
        open_begins = [e for e in track if e["ph"] == "B"]
        ends = [e for e in track if e["ph"] == "E"]
        if len(open_begins) != len(ends):
            problems.append(
                f"track {key}: {len(open_begins)} B event(s) vs "
                f"{len(ends)} E event(s)"
            )
        spans = sorted(
            ((e["ts"], e["ts"] + e.get("dur", 0), e["name"])
             for e in track if e["ph"] == "X"),
            key=lambda item: (item[0], -item[1]),
        )
        stack: List[Tuple[float, float, str]] = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                problems.append(
                    f"track {key}: span {name!r} [{start}, {end}] "
                    f"partially overlaps {stack[-1][2]!r} "
                    f"[{stack[-1][0]}, {stack[-1][1]}]"
                )
            stack.append((start, end, name))
    return problems
