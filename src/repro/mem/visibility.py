"""Scope-aware value visibility.

This module is what makes *scoped* races observable in the reproduction, the
way they are on hardware with non-coherent L1 caches (paper §II-B/§III):

* Weak (non-``volatile``) stores sit in a **per-warp write buffer**.
* A **block-scope fence** drains the issuing warp's buffer into the **SM-local
  view** — visible to the other threads on that SM (the threadblock), but not
  to other SMs.
* A **device-scope fence** drains all the way to the **backing store** (the
  device-coherent L2/DRAM level), including entries this warp previously
  published only to the SM-local view.
* **Block-scope atomics** read-modify-write the SM-local view; **device-scope
  atomics** read-modify-write the backing store.  Two blocks doing block-scope
  RMWs on one address therefore really do lose updates (Fig. 3b's work
  stealing bug hands out duplicate work here).
* Weak loads may hit a **stale L1 line**: L1 lines snapshot the SM view at
  fill time and are never invalidated by remote stores.  ``volatile``
  (strong) accesses bypass the L1, as in CUDA.

Visibility beyond what a scope guarantees is allowed (scopes are lower
bounds), and this model does grant some — e.g. an SM-local value is visible
to *all* blocks co-resident on that SM, not only the writer's block.  What it
never does is grant device-wide visibility to an operation whose scope was
only ``block``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.stats import CounterBag
from repro.isa.ops import AtomicOp
from repro.mem.atomics import apply_atomic
from repro.mem.backing import BackingStore, to_int32
from repro.mem.cache import SetAssocCache

# How a load was served; the engine maps this to a timing path.
SERVED_WB = "wb"  # forwarded from the warp's own write buffer
SERVED_L1 = "l1"  # L1 hit (possibly stale)
SERVED_FILL = "fill"  # L1 miss, line filled from the SM view
SERVED_STRONG = "strong"  # volatile access, L1 bypassed


class _SMState:
    """Per-SM functional state: write buffers, local view, L1 snapshots."""

    __slots__ = ("local", "l1", "l1_data")

    def __init__(self, l1: SetAssocCache):
        # addr -> [value, owner_warp_uid]; the SM-local (block-visible) view.
        self.local: Dict[int, List[int]] = {}
        self.l1 = l1
        # line_addr -> {addr: value} snapshot taken at fill time.
        self.l1_data: Dict[int, Dict[int, int]] = {}


class VisibilityModel:
    """Layered value visibility: write buffer -> SM-local -> backing."""

    def __init__(
        self,
        backing: BackingStore,
        num_sms: int,
        l1_size_bytes: int,
        l1_assoc: int,
        line_size: int,
        write_buffer_capacity: int,
        stats: Optional[CounterBag] = None,
    ):
        self.backing = backing
        self.line_size = line_size
        self.write_buffer_capacity = write_buffer_capacity
        self.stats = stats if stats is not None else CounterBag()
        self._sms = [
            _SMState(
                SetAssocCache("l1", l1_size_bytes, l1_assoc, line_size, self.stats)
            )
            for _ in range(num_sms)
        ]
        # warp_uid -> OrderedDict[addr, value]; warp_uid -> sm_id.
        self._wb: Dict[int, "OrderedDict[int, int]"] = {}
        self._wb_sm: Dict[int, int] = {}
        # Hot-path hoists: the backing store's word dict is cleared in
        # place (never replaced), so caching the reference is safe.
        self._words = backing._words
        self._cap = backing.capacity_bytes

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _sm_view(self, sm_id: int, addr: int) -> int:
        """The SM's current committed view of *addr* (local over backing)."""
        entry = self._sms[sm_id].local.get(addr)
        if entry is not None:
            return entry[0]
        return self.backing.read_word(addr)

    def _invalidate_l1(self, sm_id: int, addr: int) -> None:
        sm = self._sms[sm_id]
        line = addr - (addr % self.line_size)
        # l1.invalidate_line, hand-inlined (stores/atomics call this once
        # per lane).
        l1 = sm.l1
        cache_set = l1._sets.get((line // l1.line_size) % l1.num_sets)
        if cache_set is not None:
            cache_set.pop(line, None)
        sm.l1_data.pop(line, None)

    def _buffer_of(self, warp_uid: int, sm_id: int) -> "OrderedDict[int, int]":
        buf = self._wb.get(warp_uid)
        if buf is None:
            buf = OrderedDict()
            self._wb[warp_uid] = buf
        self._wb_sm[warp_uid] = sm_id
        return buf

    def _drain_entry_to_backing(self, sm_id: int, addr: int, value: int) -> None:
        self.backing.write_word(addr, value)
        self._invalidate_l1(sm_id, addr)

    def _drain_entry_to_local(
        self, sm_id: int, warp_uid: int, addr: int, value: int
    ) -> None:
        self._sms[sm_id].local[addr] = [to_int32(value), warp_uid]
        self._invalidate_l1(sm_id, addr)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def load(
        self, sm_id: int, warp_uid: int, addr: int, strong: bool
    ) -> Tuple[int, str]:
        """Return ``(value, served_from)`` for a load by *warp_uid*."""
        buf = self._wb.get(warp_uid)
        if buf is not None and addr in buf:
            return buf[addr], SERVED_WB

        sm = self._sms[sm_id]
        local = sm.local
        if strong:
            # Volatile: bypass the L1 and read the SM view (which falls
            # through to the device-coherent backing store).
            entry = local.get(addr)
            if entry is not None:
                return entry[0], SERVED_STRONG
            return self.backing.read_word(addr), SERVED_STRONG

        line = addr - (addr % self.line_size)
        # sm.l1.access hit path, hand-inlined (the tag probe + LRU touch +
        # hit counter); a probe miss falls through to the full access(),
        # which then deterministically takes its miss path.
        l1 = sm.l1
        cache_set = l1._sets.get((line // l1.line_size) % l1.num_sets)
        if cache_set is not None and line in cache_set:
            cache_set.move_to_end(line)
            keys = l1._stat_keys.get("data")
            if keys is None:
                keys = l1._keys_for("data")
            c = l1._c
            key = keys[0]
            try:
                c[key] += 1
            except KeyError:
                c[key] = 1
            snapshot = sm.l1_data.get(line)
            if snapshot is not None and addr in snapshot:
                return snapshot[addr], SERVED_L1
            # Tag present without data can only happen if snapshots and tags
            # desynchronized; treat as a fill from the current view.
            value = self._sm_view(sm_id, addr)
            sm.l1_data.setdefault(line, {})[addr] = value
            return value, SERVED_L1
        result = sm.l1.access(addr, False, "data")

        if result.evicted_line is not None:
            sm.l1_data.pop(result.evicted_line, None)
        if 0 <= line and line + self.line_size <= self.backing.capacity_bytes:
            # Whole line in bounds: read the backing words directly (the
            # stored values are already int32-normalized).
            words = self.backing._words
            snapshot = {}
            for word_addr in range(line, line + self.line_size, 4):
                entry = local.get(word_addr)
                snapshot[word_addr] = (
                    entry[0] if entry is not None else words.get(word_addr, 0)
                )
        else:
            snapshot = {
                word_addr: self._sm_view(sm_id, word_addr)
                for word_addr in range(line, line + self.line_size, 4)
            }
        sm.l1_data[line] = snapshot
        return snapshot[addr], SERVED_FILL

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def store(
        self, sm_id: int, warp_uid: int, addr: int, value: int, strong: bool
    ) -> Optional[int]:
        """Perform a store; weak stores are buffered, strong go to backing.

        Returns the address of a capacity-drained older entry, if the write
        buffer overflowed, so the caller can charge its drain traffic.
        """
        value = to_int32(value)
        if strong:
            # Program order: an older weak store of this warp to the same
            # address must not survive in the write buffer (it would both
            # shadow this store for the warp's own loads and clobber the
            # backing store when it later drains).
            buf = self._wb.get(warp_uid)
            if buf is not None:
                buf.pop(addr, None)
            self.backing.write_word(addr, value)
            # Volatile stores take effect at the device level; drop any
            # SM-local shadow so this SM keeps reading the committed value.
            self._sms[sm_id].local.pop(addr, None)
            self._invalidate_l1(sm_id, addr)
            return None

        buf = self._wb.get(warp_uid)
        if buf is None:
            buf = OrderedDict()
            self._wb[warp_uid] = buf
        self._wb_sm[warp_uid] = sm_id
        buf[addr] = value
        buf.move_to_end(addr)
        # Global stores are write-evict: the SM must not keep serving the
        # pre-store line to other warps once the store drains, and the
        # storing warp itself is covered by buffer forwarding.
        # (_invalidate_l1, hand-inlined.)
        sm = self._sms[sm_id]
        line = addr - (addr % self.line_size)
        l1 = sm.l1
        cache_set = l1._sets.get((line // l1.line_size) % l1.num_sets)
        if cache_set is not None:
            cache_set.pop(line, None)
        sm.l1_data.pop(line, None)
        if len(buf) > self.write_buffer_capacity:
            # A real write buffer eventually drains to L2; evict the oldest
            # entry to the backing store.  The drained address is returned
            # so the engine can account its traffic.
            old_addr, old_value = buf.popitem(last=False)
            self.stats.add("wb.capacity_drain")
            self._drain_entry_to_backing(sm_id, old_addr, old_value)
            return old_addr
        return None

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------
    def atomic(
        self,
        sm_id: int,
        warp_uid: int,
        addr: int,
        op: AtomicOp,
        operand: int,
        compare: Optional[int],
        device_scope: bool,
    ) -> int:
        """Perform a scoped RMW; returns the old value.

        Block-scope atomics act on the SM-local view; device-scope atomics
        act on the backing store.  Either way the warp's own buffered weak
        store to the same address (if any) is ordered before the RMW.
        """
        buf = self._wb.get(warp_uid)
        if buf is not None and addr in buf:
            # Program order: the warp's own pending store happens first.
            pending = buf.pop(addr)
            if device_scope:
                self._drain_entry_to_backing(sm_id, addr, pending)
            else:
                self._drain_entry_to_local(sm_id, warp_uid, addr, pending)

        sm = self._sms[sm_id]
        if device_scope:
            # backing.read_word/write_word + apply_atomic, hand-inlined
            # (the bounds-checked slow path keeps the exact errors).
            if addr % 4 == 0 and 0 <= addr < self._cap:
                cur = self._words.get(addr, 0)
            else:
                cur = self.backing.read_word(addr)
            if op is AtomicOp.CAS:
                new = operand if cur == compare else cur
            elif op is AtomicOp.ADD:
                new = cur + operand
            else:
                _, new = apply_atomic(op, cur, operand, compare)
            old = cur
            new &= 0xFFFFFFFF
            if new & 0x80000000:
                new -= 0x100000000
            if addr % 4 == 0 and 0 <= addr < self._cap:
                self._words[addr] = new
            else:
                self.backing.write_word(addr, new)
            # Keep the SM self-consistent: refresh any local shadow.
            if addr in sm.local:
                sm.local[addr][0] = new
        else:
            local_entry = sm.local.get(addr)
            if local_entry is not None:
                cur = local_entry[0]
            else:
                cur = self.backing.read_word(addr)
            if op is AtomicOp.CAS:
                new = operand if cur == compare else cur
            elif op is AtomicOp.ADD:
                new = cur + operand
            else:
                _, new = apply_atomic(op, cur, operand, compare)
            old = cur
            new &= 0xFFFFFFFF
            if new & 0x80000000:
                new -= 0x100000000
            sm.local[addr] = [new, warp_uid]
        # _invalidate_l1, hand-inlined (sm already resolved).
        line = addr - (addr % self.line_size)
        l1 = sm.l1
        cache_set = l1._sets.get((line // l1.line_size) % l1.num_sets)
        if cache_set is not None:
            cache_set.pop(line, None)
        sm.l1_data.pop(line, None)
        return old

    # ------------------------------------------------------------------
    # Fences and barriers
    # ------------------------------------------------------------------
    def fence(self, sm_id: int, warp_uid: int, device_scope: bool) -> List[int]:
        """Drain per the fence's scope; returns the drained addresses.

        SM-local entries always predate the warp's current write-buffer
        contents (an atomic or drain created them before any still-buffered
        store), so on a device fence they are published *first* — the
        buffer's newer values must win at the backing store.
        """
        drained: List[int] = []
        if device_scope:
            # Publish everything this warp previously made block-visible.
            local = self._sms[sm_id].local
            owned = [addr for addr, entry in local.items() if entry[1] == warp_uid]
            for addr in owned:
                value = local.pop(addr)[0]
                self._drain_entry_to_backing(sm_id, addr, value)
                drained.append(addr)
        buf = self._wb.get(warp_uid)
        if buf:
            entries = list(buf.items())
            buf.clear()
            for addr, value in entries:
                if device_scope:
                    self._drain_entry_to_backing(sm_id, addr, value)
                else:
                    self._drain_entry_to_local(sm_id, warp_uid, addr, value)
                drained.append(addr)
        return drained

    def barrier_drain(self, sm_id: int, warp_uids: List[int]) -> None:
        """A barrier implies block-scope visibility for every participant."""
        for warp_uid in warp_uids:
            self.fence(sm_id, warp_uid, device_scope=False)

    # ------------------------------------------------------------------
    # Kernel teardown
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Drain every buffer and local view to backing (kernel boundary).

        Kernel termination is a device-wide synchronization point.  The
        SM-local views drain before the write buffers (their entries are
        older than anything still buffered); within that, draining order
        is deterministic (SM index, then warp uid, then insertion order),
        so conflicting SM-local values — the footprint of a manifested
        scoped race — resolve last-writer-wins in that order.
        """
        for sm_id, sm in enumerate(self._sms):
            for addr in list(sm.local):
                value = sm.local.pop(addr)[0]
                self._drain_entry_to_backing(sm_id, addr, value)
        for warp_uid in sorted(self._wb):
            buf = self._wb[warp_uid]
            sm_id = self._wb_sm[warp_uid]
            for addr, value in buf.items():
                self._drain_entry_to_backing(sm_id, addr, value)
            buf.clear()
        for sm in self._sms:
            sm.l1.flush()
            sm.l1_data.clear()

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def pending_writes(self, warp_uid: int) -> Dict[int, int]:
        return dict(self._wb.get(warp_uid, {}))

    def sm_local_view(self, sm_id: int) -> Dict[int, int]:
        return {addr: entry[0] for addr, entry in self._sms[sm_id].local.items()}

    def l1_contains(self, sm_id: int, addr: int) -> bool:
        return self._sms[sm_id].l1.contains(addr)
