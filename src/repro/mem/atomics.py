"""Functional semantics of atomic read-modify-write operations.

Each CUDA ``atomic*`` returns the *old* value; the new value is computed
with int32 wrap-around semantics.  ``CAS`` writes only when the old value
equals the compare operand.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.ops import AtomicOp
from repro.mem.backing import to_int32


def apply_atomic(
    op: AtomicOp, old: int, operand: int, compare: Optional[int] = None
) -> Tuple[int, int]:
    """Return ``(old_value, new_value)`` for an RMW on *old*.

    >>> apply_atomic(AtomicOp.ADD, 5, 2)
    (5, 7)
    >>> apply_atomic(AtomicOp.CAS, 0, 1, compare=0)
    (0, 1)
    >>> apply_atomic(AtomicOp.CAS, 7, 1, compare=0)
    (7, 7)
    """
    if op is AtomicOp.ADD:
        new = old + operand
    elif op is AtomicOp.SUB:
        new = old - operand
    elif op is AtomicOp.EXCH:
        new = operand
    elif op is AtomicOp.CAS:
        new = operand if old == compare else old
    elif op is AtomicOp.MIN:
        new = min(old, operand)
    elif op is AtomicOp.MAX:
        new = max(old, operand)
    elif op is AtomicOp.AND:
        new = old & operand
    elif op is AtomicOp.OR:
        new = old | operand
    elif op is AtomicOp.XOR:
        new = old ^ operand
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown atomic op {op!r}")
    return old, to_int32(new)
