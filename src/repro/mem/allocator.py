"""Device-memory allocation.

A simple bump allocator over a fixed-size device memory.  The capacity
matters beyond bookkeeping: ScoRD's software metadata cache is sized from the
device memory size (one entry per ``cache_ratio`` granules of *device
memory*), so the capacity determines how far apart two addresses must be to
alias in the direct-mapped metadata cache.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.common.errors import DeviceMemoryError

WORD_BYTES = 4


class DeviceArray:
    """A named, bounds-checked view of allocated device words.

    Kernels address memory by byte address; ``DeviceArray.addr(i)`` converts
    a word index into the byte address of that element.  The host reads and
    writes elements through the owning :class:`~repro.engine.gpu.GPU` (which
    consults the backing store), not through this view.
    """

    __slots__ = ("name", "base", "length")

    def __init__(self, name: str, base: int, length: int):
        self.name = name
        self.base = base
        self.length = length

    def addr(self, index: int) -> int:
        """Byte address of element *index* (bounds-checked)."""
        if not 0 <= index < self.length:
            raise DeviceMemoryError(
                f"index {index} out of bounds for array {self.name!r} "
                f"of length {self.length}"
            )
        return self.base + index * WORD_BYTES

    @property
    def end(self) -> int:
        """One past the last byte of the array."""
        return self.base + self.length * WORD_BYTES

    def index_of(self, addr: int) -> int:
        """Inverse of :meth:`addr`; raises if *addr* is outside the array."""
        if not self.base <= addr < self.end:
            raise DeviceMemoryError(
                f"address 0x{addr:x} not within array {self.name!r}"
            )
        return (addr - self.base) // WORD_BYTES

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"DeviceArray({self.name!r}, base=0x{self.base:x}, len={self.length})"


class DeviceAllocator:
    """Bump allocator over a fixed device-memory capacity."""

    def __init__(self, capacity_bytes: int = 256 * 1024):
        if capacity_bytes <= 0 or capacity_bytes % WORD_BYTES:
            raise DeviceMemoryError("capacity must be a positive multiple of 4")
        self.capacity_bytes = capacity_bytes
        self._next = 0
        self._arrays: List[DeviceArray] = []
        self._bases: List[int] = []
        self._by_name: Dict[str, DeviceArray] = {}
        # addr -> owning array memo for owner_of (the detector asks once
        # per access); invalidated whenever the allocation map changes.
        self._owner_memo: Dict[int, Optional[DeviceArray]] = {}

    def alloc(self, length: int, name: Optional[str] = None) -> DeviceArray:
        """Allocate *length* words, returning a :class:`DeviceArray`.

        Allocations are 64B-aligned so that distinct arrays never share a
        cache line or a software-cache metadata entry (one entry covers 16
        consecutive 4-byte granules), which keeps false sharing a property
        of the *detector configuration* (Table VII) rather than an
        allocator accident.
        """
        if length <= 0:
            raise DeviceMemoryError("allocation length must be positive")
        base = (self._next + 63) & ~63
        nbytes = length * WORD_BYTES
        if base + nbytes > self.capacity_bytes:
            raise DeviceMemoryError(
                f"device memory exhausted: need {nbytes} bytes at 0x{base:x}, "
                f"capacity {self.capacity_bytes}"
            )
        if name is None:
            name = f"array{len(self._arrays)}"
        if name in self._by_name:
            raise DeviceMemoryError(f"duplicate array name {name!r}")
        array = DeviceArray(name, base, length)
        self._next = base + nbytes
        self._arrays.append(array)
        self._bases.append(base)
        self._by_name[name] = array
        self._owner_memo.clear()
        return array

    def reset(self) -> None:
        """Release every allocation (used between kernel experiments)."""
        self._next = 0
        self._arrays.clear()
        self._bases.clear()
        self._by_name.clear()
        self._owner_memo.clear()

    @property
    def used_bytes(self) -> int:
        return self._next

    @property
    def arrays(self) -> List[DeviceArray]:
        return list(self._arrays)

    def array_named(self, name: str) -> DeviceArray:
        try:
            return self._by_name[name]
        except KeyError:
            raise DeviceMemoryError(f"no array named {name!r}") from None

    def owner_of(self, addr: int) -> Optional[DeviceArray]:
        """The array containing byte address *addr*, if any (for reports).

        The bump allocator hands out monotonically increasing bases, so a
        binary search over the allocation order suffices.
        """
        memo = self._owner_memo
        try:
            return memo[addr]
        except KeyError:
            pass
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            owner = None
        else:
            array = self._arrays[index]
            owner = array if addr < array.end else None
        memo[addr] = owner
        return owner
