"""The authoritative device-level memory image.

This is the state a device-scope operation observes: conceptually the
coherent L2/DRAM level of the GPU.  Values have int32 semantics — stores are
truncated to 32 bits and loads sign-extend — matching the 4-byte word
granularity that ScoRD tracks metadata at.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import DeviceMemoryError

_INT32_MASK = 0xFFFFFFFF
_INT32_SIGN = 0x80000000


def to_int32(value: int) -> int:
    """Truncate *value* to 32-bit two's-complement and sign-extend."""
    value &= _INT32_MASK
    return value - (1 << 32) if value & _INT32_SIGN else value


class BackingStore:
    """Word-addressed memory with int32 values, zero-initialized."""

    __slots__ = ("capacity_bytes", "_words")

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
        self._words: Dict[int, int] = {}

    def _check(self, addr: int) -> int:
        if addr % 4:
            raise DeviceMemoryError(f"unaligned word access at 0x{addr:x}")
        if not 0 <= addr < self.capacity_bytes:
            raise DeviceMemoryError(
                f"access at 0x{addr:x} outside device memory "
                f"(capacity {self.capacity_bytes} bytes)"
            )
        return addr

    def read_word(self, addr: int) -> int:
        return self._words.get(self._check(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        self._words[self._check(addr)] = to_int32(value)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all non-zero words (used by tests)."""
        return dict(self._words)

    def clear(self) -> None:
        self._words.clear()
