"""The GPU memory system.

Functional side
    * :class:`~repro.mem.allocator.DeviceAllocator` hands out device
      addresses; :class:`~repro.mem.allocator.DeviceArray` is the word-array
      view kernels index into.
    * :class:`~repro.mem.backing.BackingStore` is the authoritative
      device-level (L2/DRAM) image with int32 semantics.
    * :class:`~repro.mem.visibility.VisibilityModel` layers per-warp write
      buffers and per-SM local views on top of the backing store.  Scoped
      fences drain between the layers, block-scope atomics act on the
      SM-local view, and device-scope atomics act on the backing store —
      which is exactly why insufficient scopes produce stale reads and lost
      updates in this simulator, as on real hardware with non-coherent L1s.

Timing side
    * :class:`~repro.mem.cache.SetAssocCache` models L1/L2 tag arrays
      (LRU, dirty bits, eviction accounting).
"""

from repro.mem.allocator import DeviceAllocator, DeviceArray
from repro.mem.atomics import apply_atomic
from repro.mem.backing import BackingStore, to_int32
from repro.mem.cache import CacheResult, SetAssocCache
from repro.mem.visibility import VisibilityModel

__all__ = [
    "BackingStore",
    "CacheResult",
    "DeviceAllocator",
    "DeviceArray",
    "SetAssocCache",
    "VisibilityModel",
    "apply_atomic",
    "to_int32",
]
