"""Set-associative cache tag model (used for both L1 and L2 timing).

This models *presence* (tags, LRU, dirty bits), not contents — functional
values come from :mod:`repro.mem.visibility`.  The split matches the
reproduction's needs: the L1's functional job is only "can this load return
a stale SM-local snapshot?", while its timing job (and all of L2's job) is
hit/miss/eviction accounting.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional

from repro.common.stats import CounterBag


@dataclasses.dataclass
class CacheResult:
    """Outcome of a cache access."""

    hit: bool
    evicted_line: Optional[int] = None  # line address of the victim
    evicted_dirty: bool = False
    writeback_class: str = ""  # traffic class of the victim line


class SetAssocCache:
    """LRU set-associative cache of line tags.

    Each line tracks a dirty bit and a *traffic class* string ("data" or
    "metadata") so that evictions can be attributed to the right DRAM
    counter — the Fig. 9 breakdown depends on this attribution.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int,
        stats: Optional[CounterBag] = None,
    ):
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = max(1, size_bytes // (line_size * assoc))
        # sets[set_index] maps line_addr -> (dirty, traffic_class); ordered
        # by recency (last = MRU).
        self._sets: Dict[int, "OrderedDict[int, list]"] = {}
        self.stats = stats if stats is not None else CounterBag()

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def _set_of(self, line: int) -> "OrderedDict[int, list]":
        index = (line // self.line_size) % self.num_sets
        cur = self._sets.get(index)
        if cur is None:
            cur = OrderedDict()
            self._sets[index] = cur
        return cur

    def access(
        self,
        addr: int,
        is_write: bool,
        traffic_class: str = "data",
        allocate: bool = True,
    ) -> CacheResult:
        """Access the line containing *addr*; fill on miss if *allocate*."""
        line = self.line_addr(addr)
        cache_set = self._set_of(line)
        entry = cache_set.get(line)
        if entry is not None:
            cache_set.move_to_end(line)
            if is_write:
                entry[0] = True
            self.stats.add(f"{self.name}.hit.{traffic_class}")
            return CacheResult(hit=True)

        self.stats.add(f"{self.name}.miss.{traffic_class}")
        if not allocate:
            return CacheResult(hit=False)

        result = CacheResult(hit=False)
        if len(cache_set) >= self.assoc:
            victim_line, (victim_dirty, victim_class) = cache_set.popitem(last=False)
            result.evicted_line = victim_line
            result.evicted_dirty = victim_dirty
            result.writeback_class = victim_class
            if victim_dirty:
                self.stats.add(f"{self.name}.writeback.{victim_class}")
        cache_set[line] = [is_write, traffic_class]
        return result

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._set_of(line)

    def invalidate(self, addr: int) -> None:
        """Drop the line containing *addr* without writeback (write-evict)."""
        line = self.line_addr(addr)
        self._set_of(line).pop(line, None)

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets.values():
            dirty += sum(1 for entry in cache_set.values() if entry[0])
            cache_set.clear()
        return dirty
