"""Set-associative cache tag model (used for both L1 and L2 timing).

This models *presence* (tags, LRU, dirty bits), not contents — functional
values come from :mod:`repro.mem.visibility`.  The split matches the
reproduction's needs: the L1's functional job is only "can this load return
a stale SM-local snapshot?", while its timing job (and all of L2's job) is
hit/miss/eviction accounting.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional

from repro.common.stats import CounterBag


@dataclasses.dataclass
class CacheResult:
    """Outcome of a cache access."""

    hit: bool
    evicted_line: Optional[int] = None  # line address of the victim
    evicted_dirty: bool = False
    writeback_class: str = ""  # traffic class of the victim line


# Shared result instances for the two allocation-free outcomes (a hit, and
# a miss that fills without evicting).  Callers only read the fields, so one
# immutable-by-convention instance each saves an allocation per access.
_HIT = CacheResult(hit=True)
_MISS = CacheResult(hit=False)


class SetAssocCache:
    """LRU set-associative cache of line tags.

    Each line tracks a dirty bit and a *traffic class* string ("data" or
    "metadata") so that evictions can be attributed to the right DRAM
    counter — the Fig. 9 breakdown depends on this attribution.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int,
        stats: Optional[CounterBag] = None,
    ):
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = max(1, size_bytes // (line_size * assoc))
        # sets[set_index] maps line_addr -> (dirty, traffic_class); ordered
        # by recency (last = MRU).
        self._sets: Dict[int, "OrderedDict[int, list]"] = {}
        self.stats = stats if stats is not None else CounterBag()
        self._c = self.stats.counters()
        # Counter names interned per traffic class: building
        # f"{name}.hit.{class}" on every access costs more than the
        # counter bump itself.
        self._stat_keys: Dict[str, tuple] = {}

    def _keys_for(self, traffic_class: str) -> tuple:
        keys = self._stat_keys.get(traffic_class)
        if keys is None:
            keys = (
                f"{self.name}.hit.{traffic_class}",
                f"{self.name}.miss.{traffic_class}",
                f"{self.name}.writeback.{traffic_class}",
            )
            self._stat_keys[traffic_class] = keys
        return keys

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def _set_of(self, line: int) -> "OrderedDict[int, list]":
        index = (line // self.line_size) % self.num_sets
        cur = self._sets.get(index)
        if cur is None:
            cur = OrderedDict()
            self._sets[index] = cur
        return cur

    def access(
        self,
        addr: int,
        is_write: bool,
        traffic_class: str = "data",
        allocate: bool = True,
    ) -> CacheResult:
        """Access the line containing *addr*; fill on miss if *allocate*."""
        line = addr - (addr % self.line_size)
        # _set_of, hand-inlined (one cache access per memory transaction).
        index = (line // self.line_size) % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = OrderedDict()
            self._sets[index] = cache_set
        entry = cache_set.get(line)
        keys = self._stat_keys.get(traffic_class)
        if keys is None:
            keys = self._keys_for(traffic_class)
        c = self._c
        if entry is not None:
            cache_set.move_to_end(line)
            if is_write:
                entry[0] = True
            key = keys[0]
            try:
                c[key] += 1
            except KeyError:
                c[key] = 1
            return _HIT

        key = keys[1]
        try:
            c[key] += 1
        except KeyError:
            c[key] = 1
        if not allocate:
            return _MISS

        if len(cache_set) >= self.assoc:
            victim_line, (victim_dirty, victim_class) = cache_set.popitem(last=False)
            if victim_dirty:
                wb_key = self._keys_for(victim_class)[2]
                try:
                    c[wb_key] += 1
                except KeyError:
                    c[wb_key] = 1
            cache_set[line] = [is_write, traffic_class]
            return CacheResult(
                hit=False,
                evicted_line=victim_line,
                evicted_dirty=victim_dirty,
                writeback_class=victim_class,
            )
        cache_set[line] = [is_write, traffic_class]
        return _MISS

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._set_of(line)

    def invalidate(self, addr: int) -> None:
        """Drop the line containing *addr* without writeback (write-evict)."""
        line = self.line_addr(addr)
        self._set_of(line).pop(line, None)

    def invalidate_line(self, line: int) -> None:
        """Like :meth:`invalidate` for an already line-aligned address."""
        cache_set = self._sets.get((line // self.line_size) % self.num_sets)
        if cache_set is not None:
            cache_set.pop(line, None)

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets.values():
            dirty += sum(1 for entry in cache_set.values() if entry[0])
            cache_set.clear()
        return dirty
