"""``scord-experiments fuzz``: the differential fuzz campaign CLI.

Examples::

    scord-experiments fuzz --count 200 --seed 0
    scord-experiments fuzz --count 100 --mc        # three-way differential
    scord-experiments fuzz --count 60 --time-budget 120 \
        --corpus tests/corpus/fuzz --json-out fuzz_report.json \
        --metrics-out fuzz_metrics.prom

Exit code 0 when the campaign ran to completion (disagreements are the
*product*, not a failure: each one is shrunk and persisted as a corpus
regression).  Non-zero only for harness errors.
"""

from __future__ import annotations

import argparse
import json
import sys


def fuzz_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="scord-experiments fuzz",
        description="Differentially fuzz scolint and dynamic ScoRD with "
        "synthesized programs of known ground truth "
        "(see docs/fuzzing.md).",
    )
    parser.add_argument(
        "--count", type=int, default=200, metavar="N",
        help="unique programs to evaluate (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="campaign seed: fixes program generation (default 0)",
    )
    parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="corpus directory: existing entries mask known "
        "disagreements, new shrunk disagreements are persisted here",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the campaign stops finding new work "
        "once exceeded (default: none)",
    )
    parser.add_argument(
        "--sweep-seeds", default="0,1,2", metavar="S0,S1,...",
        help="schedule-jitter seeds for the dynamic sweep "
        "(default 0,1,2; seed 0 is the unperturbed schedule)",
    )
    parser.add_argument(
        "--detector", default="scord", metavar="LABEL",
        help="dynamic detector configuration label (default scord)",
    )
    parser.add_argument(
        "--mc", action="store_true",
        help="also run the model-checking oracle (bounded DPOR schedule "
        "enumeration) on every program — three-way differential",
    )
    parser.add_argument(
        "--mc-budget", type=int, default=None, metavar="N",
        help="schedules per program for the mc oracle "
        "(default: oracles.DEFAULT_MC_BUDGET; implies --mc)",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the JSON campaign report to PATH "
        "(atomic: temp file + rename)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write fuzz.* counters as Prometheus text to PATH "
        "(and JSON to PATH.json)",
    )
    parser.add_argument(
        "--forensics-out", metavar="DIR", default=None,
        help="write a forensic bundle (both oracle verdicts + candidate "
        "happens-before edges) per disagreement under DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable summary on stdout",
    )
    args = parser.parse_args(argv)
    if args.count < 0:
        parser.error("--count must be >= 0")
    try:
        sweep = tuple(
            int(part) for part in args.sweep_seeds.split(",") if part != ""
        )
    except ValueError:
        parser.error("--sweep-seeds must be comma-separated integers")
    if not sweep:
        parser.error("--sweep-seeds must name at least one seed")

    from repro.experiments.runner import DETECTORS
    from repro.fuzz.differential import fuzz_campaign
    from repro.fuzz.oracles import DEFAULT_MC_BUDGET

    if args.detector not in DETECTORS:
        parser.error(
            f"unknown detector {args.detector!r}: "
            f"use one of {', '.join(sorted(DETECTORS))}"
        )
    mc = args.mc or args.mc_budget is not None
    mc_budget = (
        args.mc_budget if args.mc_budget is not None else DEFAULT_MC_BUDGET
    )
    if mc_budget < 1:
        parser.error("--mc-budget must be >= 1")

    telemetry = None
    if args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry.disabled()

    report = fuzz_campaign(
        count=args.count,
        seed=args.seed,
        corpus_dir=args.corpus,
        time_budget=args.time_budget,
        seeds=sweep,
        detector=args.detector,
        mc=mc,
        mc_budget=mc_budget,
        telemetry=telemetry,
    )

    if not args.quiet:
        print(_render(report))
    if args.json_out:
        from repro.experiments.store import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report, indent=2, sort_keys=True) + "\n",
        )
        print(f"[fuzz report written to {args.json_out}]", file=sys.stderr)
    if args.forensics_out:
        from repro.forensics import bundle_from_disagreement, write_bundles

        bundles = [
            bundle_from_disagreement(item)
            for item in report["disagreements"]
        ]
        written = write_bundles(bundles, args.forensics_out, prefix="fuzz")
        if telemetry is not None:
            telemetry.metrics.counter("forensics.bundles").inc(len(bundles))
        print(
            f"[{len(bundles)} forensic bundle(s) written under "
            f"{args.forensics_out}]",
            file=sys.stderr,
        )
    if telemetry is not None:
        for written in telemetry.export(None, args.metrics_out):
            print(f"[telemetry written to {written}]", file=sys.stderr)
    return 0


def _render(report: dict) -> str:
    lines = [
        "=== Differential fuzz campaign ===",
        f"programs evaluated: {report['examples']} "
        f"({report['racy']} racy, {report['race_free']} race-free; "
        f"budget {report['count']}, seed {report['seed']})",
        f"dynamic sweep: detector={report['detector']} "
        f"seeds={report['sweep_seeds']}"
        + (f"; mc oracle on (budget {report['mc_budget']})"
           if report.get("mc") else ""),
        f"rounds: {report['rounds']}"
        + (", time budget exhausted" if report["budget_exhausted"] else ""),
        f"oracle crashes: {report['crashes']}",
        f"disagreements: {len(report['disagreements'])}",
    ]
    for item in report["disagreements"]:
        lines.append(
            f"  [{item['kind']}] {item['shrunk_describe']} — {item['detail']}"
        )
        if "corpus_path" in item:
            lines.append(f"    persisted: {item['corpus_path']}")
    if report["corpus_dir"] and not report["disagreements"]:
        lines.append(f"corpus: no new entries under {report['corpus_dir']}")
    lines.append(f"elapsed: {report['elapsed_seconds']}s")
    return "\n".join(lines)
