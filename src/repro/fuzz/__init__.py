"""Differential kernel fuzzing with known-by-construction ground truth.

The suite's two oracles — scolint (static) and ScoRD (dynamic) — are
otherwise only ever graded against hand-written programs.  This package
synthesizes random scoped kernel-DSL programs whose race verdict is
known *by construction* (docs/fuzzing.md makes the argument), runs both
oracles over each, and turns every disagreement into a minimal,
replayable regression program:

* :mod:`repro.fuzz.program` — the serializable program IR, its ground
  truth, canonical-JSON content addressing, and compilation to a kernel
  generator;
* :mod:`repro.fuzz.strategies` — hypothesis strategies over the IR (the
  single program-synthesis source of truth, shared with the property
  tests);
* :mod:`repro.fuzz.oracles` — uniform verdict extraction from scolint
  and from dynamic ScoRD under a schedule-jitter seed sweep;
* :mod:`repro.fuzz.differential` — the fuzz campaign: generate, check,
  shrink disagreements with hypothesis, persist them;
* :mod:`repro.fuzz.corpus` — the replayable corpus under
  ``tests/corpus/fuzz/`` that auto-loads as regression micros.

Entry point: ``scord-experiments fuzz`` (see :mod:`repro.fuzz.cli`).
"""

from repro.fuzz.corpus import (
    load_corpus,
    make_entry,
    record_entry,
    replay_entry,
)
from repro.fuzz.differential import check_program, fuzz_campaign
from repro.fuzz.oracles import dynamic_verdict, static_verdict
from repro.fuzz.program import (
    Actor,
    Bug,
    FuzzProgram,
    Phase,
    PhaseKind,
    compile_fused,
    compile_kernel,
    compile_phase,
    fuzz_unit_digest,
    program_digest,
    run_program,
)

__all__ = [
    "Actor",
    "Bug",
    "FuzzProgram",
    "Phase",
    "PhaseKind",
    "check_program",
    "compile_fused",
    "compile_kernel",
    "compile_phase",
    "dynamic_verdict",
    "fuzz_campaign",
    "fuzz_unit_digest",
    "load_corpus",
    "make_entry",
    "program_digest",
    "record_entry",
    "replay_entry",
    "run_program",
    "static_verdict",
]
