"""The replayable fuzz corpus: shrunk disagreements as regression tests.

Every disagreement the differential harness finds — and a handful of
hand-picked *anchor* programs — is persisted as one JSON file under
``tests/corpus/fuzz/``.  An entry records the program, its ground
truth, and the verdict each oracle produced at recording time.  The
corpus regression test (satellite 3) replays every entry through both
oracles and requires the recomputed verdicts to match the recorded
ones **bit for bit** (compared as canonical JSON, equivalence-tier
style): the corpus freezes oracle behaviour on exactly the programs
that once exposed a gap.

Entry schema (``fuzz-corpus/v1``)::

    {
      "schema": "fuzz-corpus/v1",
      "digest": "<sha256 of the canonical program JSON>",
      "kind": "anchor" | <disagreement kind>,
      "note": "<human context>",
      "program": {...},                  # fuzz-program/v1
      "ground_truth": {"racy": ..., "expected_types": [...]},
      "static": {...},                   # static_verdict() output
      "dynamic": {...},                  # dynamic_verdict() output
      "mc": {...}                        # mc_verdict() output (optional:
    }                                    # only when recorded with mc on)
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence, Tuple

from repro.fuzz.oracles import (
    DEFAULT_SEEDS,
    safe_dynamic_verdict,
    safe_static_verdict,
)
from repro.fuzz.program import FuzzProgram, program_digest

CORPUS_SCHEMA = "fuzz-corpus/v1"


class CorpusError(ValueError):
    """A corpus entry that cannot be read or fails validation."""


def ground_truth_dict(program: FuzzProgram) -> dict:
    return {
        "racy": program.racy,
        "expected_types": sorted(t.value for t in program.expected_types()),
    }


def make_entry(
    program: FuzzProgram,
    kind: str,
    note: str = "",
    seeds: Sequence[int] = DEFAULT_SEEDS,
    detector: str = "scord",
    static: Optional[dict] = None,
    dynamic: Optional[dict] = None,
    mc: Optional[dict] = None,
) -> dict:
    """Build a corpus entry, computing any verdict not handed in.

    The mc verdict is only recorded when handed in (campaigns run with
    ``--mc``): unlike the other two oracles it is not computed by
    default, so mc-free corpora stay byte-identical to before PR 9.
    """
    entry = {
        "schema": CORPUS_SCHEMA,
        "digest": program_digest(program),
        "kind": kind,
        "note": note,
        "program": program.to_dict(),
        "ground_truth": ground_truth_dict(program),
        "static": (static if static is not None
                   else safe_static_verdict(program)),
        "dynamic": (dynamic if dynamic is not None
                    else safe_dynamic_verdict(program, seeds, detector)),
    }
    if mc is not None:
        entry["mc"] = mc
    return entry


def entry_filename(entry: dict) -> str:
    return f"{entry['kind']}-{entry['digest'][:12]}.json"


def record_entry(entry: dict, corpus_dir) -> str:
    """Persist *entry* into *corpus_dir*; returns the file path.

    Idempotent per (kind, program): the digest-derived filename makes
    re-recording the same disagreement overwrite, not duplicate.
    """
    from repro.experiments.store import atomic_write_text

    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(os.fspath(corpus_dir), entry_filename(entry))
    atomic_write_text(path, json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir) -> List[Tuple[str, dict]]:
    """All corpus entries under *corpus_dir*, sorted by filename."""
    corpus_dir = os.fspath(corpus_dir)
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path) as handle:
            try:
                entry = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CorpusError(f"{path}: invalid JSON ({exc})") from exc
        if entry.get("schema") != CORPUS_SCHEMA:
            raise CorpusError(
                f"{path}: schema {entry.get('schema')!r}, "
                f"expected {CORPUS_SCHEMA!r}"
            )
        out.append((path, entry))
    return out


def replay_entry(entry: dict) -> List[str]:
    """Re-run both oracles on *entry*; returns mismatch descriptions.

    Empty list = the entry replays green: the program re-derives the
    recorded digest and ground truth, and both oracles reproduce their
    recorded verdicts byte-for-byte under canonical JSON.
    """
    from repro.experiments.store import canonical_json

    problems = []
    program = FuzzProgram.from_dict(entry["program"])
    digest = program_digest(program)
    if digest != entry["digest"]:
        problems.append(
            f"digest drift: recorded {entry['digest'][:12]}, "
            f"recomputed {digest[:12]}"
        )
    truth = ground_truth_dict(program)
    if canonical_json(truth) != canonical_json(entry["ground_truth"]):
        problems.append(
            f"ground-truth drift: recorded {entry['ground_truth']}, "
            f"recomputed {truth}"
        )
    static = safe_static_verdict(program)
    if canonical_json(static) != canonical_json(entry["static"]):
        problems.append(
            f"static verdict drift: recorded {entry['static']}, "
            f"recomputed {static}"
        )
    recorded = entry["dynamic"]
    dynamic = safe_dynamic_verdict(
        program,
        seeds=recorded.get("seeds", DEFAULT_SEEDS),
        detector=recorded.get("detector", "scord"),
    )
    if canonical_json(dynamic) != canonical_json(recorded):
        problems.append(
            f"dynamic verdict drift: recorded {recorded}, "
            f"recomputed {dynamic}"
        )
    recorded_mc = entry.get("mc")
    if recorded_mc is not None:
        from repro.fuzz.oracles import DEFAULT_MC_BUDGET, safe_mc_verdict

        mc = safe_mc_verdict(
            program,
            budget=recorded_mc.get("budget", DEFAULT_MC_BUDGET),
            detector=recorded_mc.get("detector", "scord"),
        )
        if canonical_json(mc) != canonical_json(recorded_mc):
            problems.append(
                f"mc verdict drift: recorded {recorded_mc}, "
                f"recomputed {mc}"
            )
    return problems
