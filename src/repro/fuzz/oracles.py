"""Run a generated program through each oracle, uniformly.

All three oracles reduce to the same verdict shape so the differential
harness can compare them without caring which produced what:

``{"racy": bool, "types": [race-type value, ...]}``

plus oracle-specific detail.  The static verdict is deterministic (one
scolint pass).  The dynamic verdict is a *seed sweep*: the engine is
deterministic per schedule, so distinct schedules come from compiling
the program with distinct jitter seeds (a per-thread compute prologue —
the memory behaviour, and hence the ground truth, is unchanged) and the
sweep unions what any schedule surfaced.  The mc verdict (PR 9) is a
bounded DPOR exploration (:mod:`repro.mc`): instead of sampling
schedules it *enumerates* them, so ``racy`` carries a verdict field
that says whether the answer is proven or merely budget-limited.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.arch.config import GPUConfig
from repro.fuzz.program import FuzzProgram, run_program

#: default schedule-jitter sweep (seed 0 = the unperturbed schedule)
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: default schedule budget for the mc oracle — small: fuzz programs
#: are tiny, and the fair + probe schedules plus a few DPOR reversals
#: usually settle the verdict
DEFAULT_MC_BUDGET = 24


def _config() -> GPUConfig:
    return GPUConfig.scaled_default()


def static_verdict(program: FuzzProgram) -> dict:
    """One scolint pass over *program* (schedule-independent)."""
    from repro.scolint import LintGPU, analyze

    gpu = LintGPU(config=_config())
    run_program(gpu, program)
    findings = analyze(gpu)
    types = sorted({f.race_type.value for f in findings})
    return {
        "racy": bool(findings),
        "types": types,
        "rules": sorted({f.rule for f in findings}),
        "findings": len(findings),
    }


def dynamic_verdict(
    program: FuzzProgram,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    detector: str = "scord",
) -> dict:
    """Dynamic ScoRD over a schedule-jitter seed sweep of *program*."""
    from repro.engine.gpu import GPU
    from repro.experiments.runner import DETECTORS

    by_seed = {}
    union = set()
    for seed in seeds:
        gpu = GPU(config=_config(), detector_config=DETECTORS[detector])
        run_program(gpu, program, jitter_seed=seed)
        types = sorted({r.race_type.value for r in gpu.races.unique_races})
        by_seed[str(seed)] = types
        union.update(types)
    return {
        "racy": bool(union),
        "types": sorted(union),
        "seeds": [int(s) for s in seeds],
        "by_seed": by_seed,
        "detector": detector,
    }


def mc_verdict(
    program: FuzzProgram,
    budget: int = DEFAULT_MC_BUDGET,
    detector: str = "scord",
) -> dict:
    """Bounded DPOR schedule enumeration of *program* (the third
    oracle).  ``racy=True`` is always conclusive (a witness schedule
    exists); ``racy=False`` is conclusive only when ``verdict`` is
    ``proven_race_free`` — ``budget_exhausted`` means the frontier was
    not drained and the comparison must treat the oracle as abstaining.
    """
    from repro.mc.explorer import explore
    from repro.mc.targets import target_from_program

    target = target_from_program(program, detector=detector)
    report = explore(target, budget=budget, stop_on_race=True)
    return {
        "racy": report["racy"],
        "types": list(report["race_types"]),
        "verdict": report["verdict"],
        "schedules_explored": report["schedules_explored"],
        "schedules_pruned": report["schedules_pruned"],
        "prune_ratio": report["prune_ratio"],
        "errors": report["errors"],
        "budget": int(budget),
        "detector": detector,
    }


def _safe(fn, *args, **kwargs) -> dict:
    try:
        return fn(*args, **kwargs)
    except Exception as exc:  # noqa: BLE001 — oracle crash IS the finding
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "racy": None,
            "types": [],
        }


def safe_static_verdict(program: FuzzProgram) -> dict:
    """:func:`static_verdict`, with oracle crashes folded into the
    verdict (``{"error": ...}``) instead of raised.  Both the engine
    and scolint are deterministic, so a crash verdict replays
    byte-identically — a crashing program can live in the corpus."""
    return _safe(static_verdict, program)


def safe_dynamic_verdict(
    program: FuzzProgram,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    detector: str = "scord",
) -> dict:
    """:func:`dynamic_verdict` with crashes folded in (see above)."""
    return _safe(dynamic_verdict, program, seeds, detector)


def safe_mc_verdict(
    program: FuzzProgram,
    budget: int = DEFAULT_MC_BUDGET,
    detector: str = "scord",
) -> dict:
    """:func:`mc_verdict` with crashes folded in (see above).

    Per-schedule engine aborts are *not* crashes — the explorer folds
    those into the report's ``errors`` count; only a failure of the
    exploration machinery itself produces an ``{"error": ...}``
    verdict."""
    return _safe(mc_verdict, program, budget, detector)
