"""Hypothesis strategies over the fuzz program IR.

One source of truth for program synthesis: the property tests
(``tests/test_property_programs.py``), the construction-validation
tests, and the differential campaign all draw from here.

Design notes (they matter for shrinking quality):

* no ``assume``/filtering — every draw is structurally valid by
  construction (distinct actors come from draw-then-offset, bug choices
  come from the :data:`~repro.fuzz.program.BUGS_FOR` applicability
  table), so hypothesis never discards and shrinking stays monotone;
* racy programs are a clean program with buggy phases substituted in,
  so the shrinker can simplify the clean scaffolding independently of
  the bug;
* shapes are deliberately small (grid <= 3, <= 3 warps/block, <= 5
  phases): every race class in the taxonomy is expressible at this
  size, and the simulator cost per example stays in the tens of
  milliseconds.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import strategies as st

from repro.fuzz.program import (
    BUGS_FOR,
    COMMUNICATION_KINDS,
    NOISE_KINDS,
    Actor,
    Bug,
    FuzzProgram,
    Phase,
    PhaseKind,
)
from repro.isa.scopes import Scope

MAX_GRID = 3
#: at least 2 warps per block so same-block actor pairs always exist
MIN_WARPS = 2
MAX_WARPS = 3
MAX_PHASES = 5


@st.composite
def _distinct_index_pair(draw, bound: int):
    """Two distinct integers in [0, bound) without filtering."""
    first = draw(st.integers(0, bound - 1))
    second = draw(st.integers(0, bound - 2))
    if second >= first:
        second += 1
    return first, second


@st.composite
def _actor_pair(draw, grid: int, warps: int, span: Scope):
    """A distinct (writer, reader) pair realizing exactly *span*."""
    if span is Scope.BLOCK:
        block = draw(st.integers(0, grid - 1))
        w_warp, r_warp = draw(_distinct_index_pair(warps))
        return Actor(block, w_warp), Actor(block, r_warp)
    w_block, r_block = draw(_distinct_index_pair(grid))
    w_warp = draw(st.integers(0, warps - 1))
    r_warp = draw(st.integers(0, warps - 1))
    return Actor(w_block, w_warp), Actor(r_block, r_warp)


def _spans_for(grid: int, kind: PhaseKind, buggy: bool):
    """Spans at which *kind* is expressible (and has bugs, if *buggy*)."""
    spans = [Scope.BLOCK]
    if grid > 1 and kind is not PhaseKind.BARRIER:
        spans.append(Scope.DEVICE)
    if buggy:
        spans = [s for s in spans if BUGS_FOR[(kind, s)]]
    return spans


@st.composite
def clean_phases(draw, grid: int, warps: int):
    """One phase with ``bug=NONE`` (noise or correct communication)."""
    kind = draw(st.sampled_from(NOISE_KINDS + COMMUNICATION_KINDS))
    if kind in NOISE_KINDS:
        return Phase(kind)
    span = draw(st.sampled_from(_spans_for(grid, kind, buggy=False)))
    writer, reader = draw(_actor_pair(grid, warps, span))
    wide = span is Scope.BLOCK and draw(st.booleans())
    return Phase(kind, writer, reader, Bug.NONE, wide_sync=wide)


@st.composite
def buggy_phases(draw, grid: int, warps: int):
    """One communication phase carrying an applicable bug."""
    kinds = [k for k in COMMUNICATION_KINDS if _spans_for(grid, k, True)]
    kind = draw(st.sampled_from(kinds))
    span = draw(st.sampled_from(_spans_for(grid, kind, buggy=True)))
    writer, reader = draw(_actor_pair(grid, warps, span))
    bug = draw(st.sampled_from(BUGS_FOR[(kind, span)]))
    return Phase(kind, writer, reader, bug)


@st.composite
def programs(draw, racy: Optional[bool] = None) -> FuzzProgram:
    """A whole program; ``racy`` forces the ground-truth verdict.

    ``racy=None`` draws a mixed population (each phase independently
    has a chance of carrying a bug); ``racy=False`` yields provably
    well-synchronized programs; ``racy=True`` guarantees at least one
    buggy phase.
    """
    grid = draw(st.integers(1, MAX_GRID))
    warps = draw(st.integers(MIN_WARPS, MAX_WARPS))
    count = draw(st.integers(1, MAX_PHASES))
    phases = [draw(clean_phases(grid, warps)) for _ in range(count)]
    if racy is None:
        for index in range(count):
            if draw(st.booleans()):
                phases[index] = draw(buggy_phases(grid, warps))
    elif racy:
        forced = draw(st.integers(0, count - 1))
        for index in range(count):
            if index == forced or draw(st.booleans()):
                phases[index] = draw(buggy_phases(grid, warps))
    return FuzzProgram(grid=grid, warps_per_block=warps,
                       phases=tuple(phases))


def race_free_programs():
    """Programs that are provably well-synchronized by construction."""
    return programs(racy=False)


def racy_programs():
    """Programs guaranteed to contain at least one labeled race."""
    return programs(racy=True)
