"""The differential fuzz campaign: generate, cross-check, shrink, persist.

:func:`check_program` is the differential comparison for ONE program:
ground truth (by construction) vs scolint vs dynamic ScoRD under a
schedule-jitter seed sweep — plus, with ``mc=True``, bounded DPOR
schedule enumeration (:mod:`repro.mc`) as a third oracle.  It returns
``None`` on agreement or a classified disagreement:

=======================  ==============================================
kind                     meaning
=======================  ==============================================
static-false-positive    scolint flags a provably race-free program
static-miss              scolint passes a program that is racy
static-type-mismatch     scolint is racy but labels ≠ expected labels
                         (scolint is deterministic and per-phase
                         complete, so the match is exact set equality)
dynamic-false-positive   any swept schedule reports on race-free code
dynamic-miss             no swept schedule reports on racy code
dynamic-unexpected-type  a schedule reports a label outside the
                         expected set (subset match only: a dynamic
                         detector may legitimately see a race through
                         fewer classes than injected)
mc-false-positive        the explorer found a witness schedule on
                         provably race-free code
mc-miss                  the explorer *proved* race-free (exhausted
                         frontier, no truncation) on racy code — a
                         ``budget_exhausted`` non-finding is an
                         abstention, never a disagreement
mc-unexpected-type       a witness schedule carries a label outside
                         the expected set (subset match, as dynamic)
static-crash /           an oracle raised instead of returning; the
dynamic-crash /          exception is the verdict (all oracles are
mc-crash                 deterministic, so crashes replay stably)
=======================  ==============================================

:func:`fuzz_campaign` drives hypothesis over the shared strategies in
rounds: each round either exhausts the remaining example budget in
agreement, or raises on the first *novel* disagreement so hypothesis
shrinks it to a minimal program, which is persisted to the corpus and
masked (by content digest) for subsequent rounds.  Every evaluated
program is memoized by digest, so shrinking never re-simulates a
program twice and the budget counts unique programs.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Sequence

from hypothesis import HealthCheck, Verbosity, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from repro.fuzz.corpus import load_corpus, make_entry, record_entry
from repro.fuzz.oracles import (
    DEFAULT_MC_BUDGET,
    DEFAULT_SEEDS,
    safe_dynamic_verdict,
    safe_mc_verdict,
    safe_static_verdict,
)
from repro.fuzz.program import FuzzProgram, program_digest
from repro.fuzz.strategies import programs

REPORT_SCHEMA = "fuzz-report/v1"


def check_program(
    program: FuzzProgram,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    detector: str = "scord",
    mc: bool = False,
    mc_budget: int = DEFAULT_MC_BUDGET,
) -> Optional[dict]:
    """Cross-check one program; ``None`` means all oracles agree."""
    expected = {t.value for t in program.expected_types()}
    racy = program.racy
    static = safe_static_verdict(program)
    dynamic = safe_dynamic_verdict(program, seeds, detector)
    mc_result = (
        safe_mc_verdict(program, mc_budget, detector) if mc else None
    )

    kind = None
    detail = ""
    if "error" in static:
        kind, detail = "static-crash", static["error"]
    elif "error" in dynamic:
        kind, detail = "dynamic-crash", dynamic["error"]
    elif mc_result is not None and "error" in mc_result:
        kind, detail = "mc-crash", mc_result["error"]
    elif not racy:
        if static["racy"]:
            kind = "static-false-positive"
            detail = f"scolint reported {static['types']} on race-free code"
        elif dynamic["racy"]:
            kind = "dynamic-false-positive"
            detail = (f"ScoRD reported {dynamic['types']} on race-free "
                      f"code (seeds {dynamic['seeds']})")
        elif mc_result is not None and mc_result["racy"]:
            kind = "mc-false-positive"
            detail = (f"explorer found a witness schedule reporting "
                      f"{mc_result['types']} on race-free code")
    else:
        if not static["racy"]:
            kind = "static-miss"
            detail = f"scolint missed expected {sorted(expected)}"
        elif set(static["types"]) != expected:
            kind = "static-type-mismatch"
            detail = (f"scolint labeled {static['types']}, "
                      f"expected exactly {sorted(expected)}")
        elif not dynamic["racy"]:
            kind = "dynamic-miss"
            detail = (f"no swept schedule (seeds {dynamic['seeds']}) "
                      f"caught expected {sorted(expected)}")
        elif set(dynamic["types"]) - expected:
            kind = "dynamic-unexpected-type"
            detail = (f"ScoRD labeled {dynamic['types']}, outside "
                      f"expected {sorted(expected)}")
        elif mc_result is not None and not mc_result["racy"]:
            # Only an outright PROOF of race-freedom on racy code is a
            # disagreement; a spent budget is an abstention.
            if mc_result["verdict"] == "proven_race_free":
                kind = "mc-miss"
                detail = (f"explorer proved race-free against expected "
                          f"{sorted(expected)}")
        elif mc_result is not None and set(mc_result["types"]) - expected:
            kind = "mc-unexpected-type"
            detail = (f"explorer labeled {mc_result['types']}, outside "
                      f"expected {sorted(expected)}")
    if kind is None:
        return None
    result = {
        "kind": kind,
        "detail": detail,
        "digest": program_digest(program),
        "static": static,
        "dynamic": dynamic,
    }
    if mc_result is not None:
        result["mc"] = mc_result
    return result


class _Disagreement(Exception):
    """Raised inside a probe so hypothesis shrinks the triggering input."""


def _count(telemetry, name: str, value: int = 1) -> None:
    # Metrics accumulate even on Telemetry.disabled() (tracing-off)
    # bundles, so gate only on having a bundle at all.
    if telemetry is not None:
        telemetry.metrics.counter(name).inc(value)


def fuzz_campaign(
    count: int = 200,
    seed: int = 0,
    corpus_dir=None,
    time_budget: Optional[float] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    detector: str = "scord",
    mc: bool = False,
    mc_budget: int = DEFAULT_MC_BUDGET,
    telemetry=None,
    known_digests: Iterable[str] = (),
) -> dict:
    """Run a differential campaign of up to *count* unique programs.

    Existing corpus entries under *corpus_dir* (and *known_digests*)
    are masked: re-finding a known minimal program is not a new
    disagreement.  Each novel disagreement is hypothesis-shrunk,
    recorded to the corpus, then masked for the rest of the campaign.
    """
    started = time.monotonic()
    deadline = started + time_budget if time_budget else None
    known = set(known_digests)
    if corpus_dir is not None:
        known.update(entry["digest"] for _, entry in load_corpus(corpus_dir))

    memo: Dict[str, Optional[dict]] = {}
    tally = {"racy": 0, "race_free": 0, "skipped_known": 0, "crashes": 0}
    budget_exhausted = False

    def consider(program: FuzzProgram) -> Optional[dict]:
        nonlocal budget_exhausted
        if deadline is not None and time.monotonic() > deadline:
            budget_exhausted = True
        if budget_exhausted:
            return None
        digest = program_digest(program)
        if digest in known:
            tally["skipped_known"] += 1
            _count(telemetry, "fuzz.skipped_known")
            return None
        if digest in memo:
            return memo[digest]
        result = check_program(program, seeds, detector, mc, mc_budget)
        memo[digest] = result
        tally["racy" if program.racy else "race_free"] += 1
        _count(telemetry, "fuzz.examples")
        _count(telemetry, "fuzz.racy" if program.racy else "fuzz.race_free")
        if result is not None and result["kind"].endswith("-crash"):
            tally["crashes"] += 1
            _count(telemetry, "fuzz.crashes")
        return result

    def probe_round(round_index: int, budget: int) -> Optional[dict]:
        captured = {}

        @hypothesis_seed(seed * 0x9E3779B1 + round_index * 7919)
        @hypothesis_settings(
            max_examples=budget,
            deadline=None,
            database=None,
            suppress_health_check=list(HealthCheck),
            report_multiple_bugs=False,
            verbosity=Verbosity.quiet,
        )
        @given(programs())
        def probe(program: FuzzProgram) -> None:
            result = consider(program)
            if result is not None:
                # Hypothesis re-executes the minimal failing example
                # last, so after shrinking this holds the shrunk one.
                captured["last"] = (program, result)
                raise _Disagreement(result["kind"])

        try:
            probe()
        except _Disagreement:
            program, result = captured["last"]
            return {"program": program, **result}
        return None

    disagreements = []
    rounds = 0
    while not budget_exhausted:
        budget = count - len(memo)
        if budget <= 0:
            break
        rounds += 1
        _count(telemetry, "fuzz.rounds")
        found = probe_round(rounds, budget)
        if found is None:
            break  # budget spent in agreement
        _count(telemetry, "fuzz.disagreements")
        program = found.pop("program")
        known.add(found["digest"])
        record = dict(found)
        record["program"] = program.to_dict()
        record["shrunk_describe"] = program.describe()
        if corpus_dir is not None:
            entry = make_entry(
                program,
                kind=found["kind"],
                note=found["detail"],
                seeds=seeds,
                detector=detector,
                static=found["static"],
                dynamic=found["dynamic"],
                mc=found.get("mc"),
            )
            record["corpus_path"] = record_entry(entry, corpus_dir)
            _count(telemetry, "fuzz.corpus_new")
        disagreements.append(record)

    return {
        "schema": REPORT_SCHEMA,
        "count": count,
        "seed": seed,
        "sweep_seeds": [int(s) for s in seeds],
        "detector": detector,
        "mc": bool(mc),
        "mc_budget": int(mc_budget) if mc else None,
        "examples": len(memo),
        "racy": tally["racy"],
        "race_free": tally["race_free"],
        "skipped_known": tally["skipped_known"],
        "crashes": tally["crashes"],
        "rounds": rounds,
        "budget_exhausted": budget_exhausted,
        "disagreements": disagreements,
        "corpus_dir": None if corpus_dir is None else str(corpus_dir),
        "elapsed_seconds": round(time.monotonic() - started, 3),
    }
