"""The fuzzer's program IR: scoped two-actor communication phases.

A :class:`FuzzProgram` is a grid shape plus a list of independent
*phases*.  Each communication phase stages one synchronization idiom
from the suite (flag handoff, spin-lock mutex, shared atomics, barrier
publication) between two *actors* — lane-0 threads of two distinct
warps — on words private to that phase.  Noise phases (disjoint
per-thread writes, read-only scans) add scale without conflicts.

Ground truth is known **by construction** (docs/fuzzing.md):

* a phase with ``bug == Bug.NONE`` injects a happens-before chain at a
  scope covering its span (the writer's release fence + flag/lock/
  barrier edge + the reader's acquire side), so every conflicting pair
  it creates is ordered and flushed — race-free;
* every :class:`Bug` removes exactly one link of that chain, leaving a
  specific conflicting pair in a specific race class of the paper's
  Table IV — its :func:`expected_types` label.

Programs serialize to canonical JSON (sorted keys, no volatile fields),
so their SHA-256 digest is a stable content address usable with the
PR 2 result cache (:func:`fuzz_unit_digest`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Dict, Optional, Tuple

from repro.common.rng import SplitMix64
from repro.isa.scopes import Scope
from repro.scord.races import RaceType

#: bump when the program wire format or the generated kernel changes
#: incompatibly (invalidates fuzz cache digests and corpus entries).
PROGRAM_SCHEMA = "fuzz-program/v1"

#: bounded spins, so both the engine and the lint interpreter terminate
POLL_LIMIT = 3000
LOCK_LIMIT = 3000
BACKOFF_CYCLES = 20
#: the writer idles before publishing so a weak poller demonstrably
#: polls (>= 3 occurrences is scolint's polling signature)
WRITER_DELAY_OPS = 6


class PhaseKind(enum.Enum):
    """The synchronization idiom a phase stages."""

    HANDOFF = "handoff"      # st payload; fence; flag exch  /  poll; ld
    MUTEX = "mutex"          # CAS+fence ... fence+Exch critical sections
    ATOMICS = "atomics"      # both actors RMW one shared word
    BARRIER = "barrier"      # st; __syncthreads; ld (same block only)
    DISJOINT = "disjoint"    # noise: every thread owns its own word
    READ_ONLY = "read_only"  # noise: loads of host-initialized data


class Bug(enum.Enum):
    """Which link of the phase's happens-before chain is removed."""

    NONE = "none"
    NO_FENCE = "no-fence"            # omit the release/acquire fences
    NARROW_FENCE = "narrow-fence"    # block fence where device is needed
    NARROW_ATOMIC = "narrow-atomic"  # block-scope atomic across blocks
    SKIP_SYNC = "skip-sync"          # bypass the lock / omit the barrier
    WEAK_POLL = "weak-poll"          # poll with plain non-volatile loads


#: phase kinds that stage a (potentially racy) communication episode
COMMUNICATION_KINDS = (
    PhaseKind.HANDOFF, PhaseKind.MUTEX, PhaseKind.ATOMICS, PhaseKind.BARRIER,
)
#: race-free filler
NOISE_KINDS = (PhaseKind.DISJOINT, PhaseKind.READ_ONLY)

#: bugs applicable per (kind, span) — the strategy and the validator
#: share this table.  Narrow-scope bugs need a DEVICE span to narrow.
BUGS_FOR: Dict[Tuple[PhaseKind, Scope], Tuple[Bug, ...]] = {
    (PhaseKind.HANDOFF, Scope.BLOCK): (Bug.NO_FENCE, Bug.WEAK_POLL),
    (PhaseKind.HANDOFF, Scope.DEVICE): (
        Bug.NO_FENCE, Bug.NARROW_FENCE, Bug.NARROW_ATOMIC, Bug.WEAK_POLL,
    ),
    (PhaseKind.MUTEX, Scope.BLOCK): (Bug.NO_FENCE, Bug.SKIP_SYNC),
    (PhaseKind.MUTEX, Scope.DEVICE): (
        Bug.NO_FENCE, Bug.NARROW_FENCE, Bug.NARROW_ATOMIC, Bug.SKIP_SYNC,
    ),
    (PhaseKind.ATOMICS, Scope.BLOCK): (),
    (PhaseKind.ATOMICS, Scope.DEVICE): (Bug.NARROW_ATOMIC,),
    (PhaseKind.BARRIER, Scope.BLOCK): (Bug.SKIP_SYNC,),
    (PhaseKind.BARRIER, Scope.DEVICE): (),
}


class ProgramError(ValueError):
    """An ill-formed FuzzProgram (bug inapplicable, bad actors, ...)."""


@dataclasses.dataclass(frozen=True, order=True)
class Actor:
    """One communicating thread: lane 0 of warp *warp* in block *block*."""

    block: int
    warp: int

    def tid(self, warp_size: int) -> int:
        return self.warp * warp_size


@dataclasses.dataclass(frozen=True)
class Phase:
    """One independent episode on its own data/sync words."""

    kind: PhaseKind
    writer: Optional[Actor] = None
    reader: Optional[Actor] = None
    bug: Bug = Bug.NONE
    #: use device-scope synchronization even when the span is only BLOCK
    wide_sync: bool = False

    @property
    def span(self) -> Scope:
        """The scope synchronization must cover for this actor pair."""
        if self.writer is None or self.reader is None:
            return Scope.BLOCK
        return (Scope.DEVICE if self.writer.block != self.reader.block
                else Scope.BLOCK)

    @property
    def sync_scope(self) -> Scope:
        """Scope of the phase's correct synchronization ops."""
        if self.span is Scope.DEVICE or self.wide_sync:
            return Scope.DEVICE
        return Scope.BLOCK

    def expected_types(self) -> frozenset:
        """RaceTypes this phase's bug can legitimately surface (empty =
        race-free by construction)."""
        if self.kind in NOISE_KINDS or self.bug is Bug.NONE:
            return frozenset()
        missing = (RaceType.MISSING_DEVICE_FENCE if self.span > Scope.BLOCK
                   else RaceType.MISSING_BLOCK_FENCE)
        if self.bug is Bug.NO_FENCE:
            return frozenset({missing})
        if self.bug is Bug.NARROW_FENCE:
            return frozenset({RaceType.SCOPED_FENCE})
        if self.bug is Bug.NARROW_ATOMIC:
            return frozenset({RaceType.SCOPED_ATOMIC})
        if self.bug is Bug.SKIP_SYNC:
            if self.kind is PhaseKind.BARRIER:
                return frozenset({RaceType.MISSING_BLOCK_FENCE})
            return frozenset({RaceType.LOCK})
        if self.bug is Bug.WEAK_POLL:
            return frozenset({missing, RaceType.NOT_STRONG})
        raise ProgramError(f"unlabelled bug {self.bug!r}")

    def validate(self, grid: int, warps_per_block: int) -> None:
        if self.kind in NOISE_KINDS:
            if self.writer is not None or self.reader is not None:
                raise ProgramError(f"{self.kind.value} phase takes no actors")
            if self.bug is not Bug.NONE:
                raise ProgramError(f"{self.kind.value} phase cannot carry a bug")
            return
        if self.writer is None or self.reader is None:
            raise ProgramError(f"{self.kind.value} phase needs two actors")
        for actor in (self.writer, self.reader):
            if not (0 <= actor.block < grid):
                raise ProgramError(f"actor block {actor.block} outside grid")
            if not (0 <= actor.warp < warps_per_block):
                raise ProgramError(f"actor warp {actor.warp} outside block")
        if self.writer == self.reader:
            raise ProgramError("actors must be distinct warps")
        if (self.writer.block == self.reader.block
                and self.writer.warp == self.reader.warp):
            raise ProgramError("actors must be distinct warps")
        if self.kind is PhaseKind.BARRIER and self.span is not Scope.BLOCK:
            raise ProgramError("barrier phases need both actors in one block")
        if (self.bug is not Bug.NONE
                and self.bug not in BUGS_FOR[(self.kind, self.span)]):
            raise ProgramError(
                f"bug {self.bug.value} inapplicable to {self.kind.value} "
                f"at {self.span} span"
            )


@dataclasses.dataclass(frozen=True)
class FuzzProgram:
    """A grid shape plus independent phases; ground truth by construction."""

    grid: int
    warps_per_block: int
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if self.grid < 1 or self.warps_per_block < 1:
            raise ProgramError("grid and warps_per_block must be >= 1")
        if not self.phases:
            raise ProgramError("a program needs at least one phase")
        for phase in self.phases:
            phase.validate(self.grid, self.warps_per_block)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    @property
    def racy(self) -> bool:
        return any(phase.bug is not Bug.NONE for phase in self.phases)

    def expected_types(self) -> frozenset:
        out = frozenset()
        for phase in self.phases:
            out |= phase.expected_types()
        return out

    def block_dim(self, warp_size: int) -> int:
        return self.warps_per_block * warp_size

    # ------------------------------------------------------------------
    # Canonical serialization (order-independent content address)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": PROGRAM_SCHEMA,
            "grid": self.grid,
            "warps_per_block": self.warps_per_block,
            "phases": [
                {
                    "kind": phase.kind.value,
                    "writer": (None if phase.writer is None
                               else [phase.writer.block, phase.writer.warp]),
                    "reader": (None if phase.reader is None
                               else [phase.reader.block, phase.reader.warp]),
                    "bug": phase.bug.value,
                    "wide_sync": phase.wide_sync,
                }
                for phase in self.phases
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzProgram":
        schema = payload.get("schema")
        if schema != PROGRAM_SCHEMA:
            raise ProgramError(
                f"unsupported program schema {schema!r} "
                f"(this build reads {PROGRAM_SCHEMA})"
            )
        phases = []
        for raw in payload["phases"]:
            phases.append(Phase(
                kind=PhaseKind(raw["kind"]),
                writer=(None if raw.get("writer") is None
                        else Actor(*raw["writer"])),
                reader=(None if raw.get("reader") is None
                        else Actor(*raw["reader"])),
                bug=Bug(raw.get("bug", "none")),
                wide_sync=bool(raw.get("wide_sync", False)),
            ))
        return cls(
            grid=int(payload["grid"]),
            warps_per_block=int(payload["warps_per_block"]),
            phases=tuple(phases),
        )

    def describe(self) -> str:
        parts = []
        for phase in self.phases:
            label = phase.kind.value
            if phase.bug is not Bug.NONE:
                label += f"!{phase.bug.value}"
            if phase.writer is not None:
                label += (f"[{phase.writer.block}.{phase.writer.warp}->"
                          f"{phase.reader.block}.{phase.reader.warp}]")
            parts.append(label)
        return (f"grid={self.grid} warps={self.warps_per_block} "
                + " ".join(parts))


def canonical_program_json(program: FuzzProgram) -> str:
    """Byte-stable JSON text of the program (the hashable identity)."""
    from repro.experiments.store import canonical_json

    return canonical_json(program.to_dict())


def program_digest(program: FuzzProgram) -> str:
    """SHA-256 content address of a program, stable across machines."""
    return hashlib.sha256(
        canonical_program_json(program).encode("utf-8")
    ).hexdigest()


def fuzz_unit_digest(
    program: FuzzProgram, detector: str = "scord", seed: int = 0
) -> str:
    """Content address of one (program, detector, schedule seed) unit.

    Mirrors :func:`repro.experiments.store.unit_digest`: the detector
    label resolves to its full configuration before hashing (two labels
    naming one configuration share entries), the record schema version
    is folded in (a schema bump invalidates by construction), and
    nothing volatile enters the hash — so generated-program results can
    live in the PR 2 content-addressed cache next to suite units.
    """
    from repro.experiments.runner import DETECTORS
    from repro.experiments.store import SCHEMA_VERSION, canonical_json

    identity = {
        "schema": SCHEMA_VERSION,
        "kind": "fuzz-program",
        "program": program.to_dict(),
        "seed": int(seed),
        "detector": dataclasses.asdict(DETECTORS[detector]),
    }
    return hashlib.sha256(
        canonical_json(identity).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# Compilation to kernel generators
#
# Each phase compiles to its OWN kernel and the program runs as a launch
# sequence.  Launches are device-wide synchronization points in both the
# engine and scolint, so the program's verdict composes exactly from the
# per-phase table above.  (Fusing phases into one kernel is deliberately
# avoided for the ground-truth path: a racy phase preceded by an
# unrelated-but-correct sync phase in the same kernel can launder the
# dynamic detector's per-warp synchronization state and mask the race —
# see docs/fuzzing.md; ``compile_fused`` exists to demonstrate this.)
# ----------------------------------------------------------------------
def _is_actor(ctx, actor: Actor) -> bool:
    return (ctx.bid == actor.block
            and ctx.tid == actor.warp * ctx.warp_size)


def _handoff(ctx, phase: Phase, index: int, cells, syncw):
    bug = phase.bug
    if _is_actor(ctx, phase.writer):
        # Idle before publishing so a polling reader demonstrably polls.
        for _ in range(WRITER_DELAY_OPS):
            yield ctx.compute(5)
        yield ctx.st(cells, index, 40 + index, volatile=True)
        if bug is not Bug.NO_FENCE:
            scope = (Scope.BLOCK if bug is Bug.NARROW_FENCE
                     else phase.sync_scope)
            yield ctx.fence(scope)
        scope = (Scope.BLOCK if bug is Bug.NARROW_ATOMIC
                 else phase.sync_scope)
        yield ctx.atomic_exch(syncw, index, 1, scope=scope)
    elif _is_actor(ctx, phase.reader):
        spins = 0
        saw = False
        while spins < POLL_LIMIT:
            if bug is Bug.WEAK_POLL:
                value = yield ctx.ld(syncw, index)  # plain, not strong
            else:
                value = yield ctx.atomic_add(
                    syncw, index, 0, scope=phase.sync_scope
                )
            if value == 1:
                saw = True
                break
            spins += 1
            yield ctx.compute(BACKOFF_CYCLES)
        if saw:
            yield ctx.ld(cells, index, volatile=True)


def _mutex(ctx, phase: Phase, index: int, cells, syncw):
    bug = phase.bug
    is_writer = _is_actor(ctx, phase.writer)
    is_reader = _is_actor(ctx, phase.reader)
    if not (is_writer or is_reader):
        return
    increment = 1 if is_writer else 2
    if bug is Bug.SKIP_SYNC and is_writer:
        # The writer updates the guarded word without taking the lock.
        value = yield ctx.ld(cells, index, volatile=True)
        yield ctx.st(cells, index, value + increment, volatile=True)
        return
    cas_scope = (Scope.BLOCK if bug is Bug.NARROW_ATOMIC
                 else phase.sync_scope)
    fence_scope = (Scope.BLOCK if bug is Bug.NARROW_FENCE
                   else phase.sync_scope)
    spins = 0
    while True:
        old = yield ctx.atomic_cas(syncw, index, 0, 1, scope=cas_scope)
        if old == 0:
            break
        spins += 1
        if spins >= LOCK_LIMIT:
            return  # give up; skip the critical section entirely
        yield ctx.compute(BACKOFF_CYCLES)
    if bug is not Bug.NO_FENCE:
        yield ctx.fence(fence_scope)
    value = yield ctx.ld(cells, index, volatile=True)
    yield ctx.st(cells, index, value + increment, volatile=True)
    if bug is not Bug.NO_FENCE:
        yield ctx.fence(fence_scope)
    yield ctx.atomic_exch(syncw, index, 0, scope=cas_scope)


def _atomics(ctx, phase: Phase, index: int, cells):
    is_writer = _is_actor(ctx, phase.writer)
    is_reader = _is_actor(ctx, phase.reader)
    if not (is_writer or is_reader):
        return
    scope = phase.sync_scope
    if phase.bug is Bug.NARROW_ATOMIC and is_writer:
        scope = Scope.BLOCK
    # Two RMWs per actor so either interleaving exposes a scope mismatch.
    yield ctx.atomic_add(cells, index, 1, scope=scope)
    yield ctx.compute(BACKOFF_CYCLES)
    yield ctx.atomic_add(cells, index, 1, scope=scope)


def _barrier_phase(ctx, phase: Phase, index: int, cells):
    if _is_actor(ctx, phase.writer):
        yield ctx.st(cells, index, 7 + index, volatile=True)
    if phase.bug is not Bug.SKIP_SYNC:
        yield ctx.barrier()
    if _is_actor(ctx, phase.reader):
        yield ctx.ld(cells, index, volatile=True)


def _disjoint(ctx, index: int, noise):
    yield ctx.st(noise, ctx.gtid, ctx.gtid + index, volatile=True)
    yield ctx.ld(noise, ctx.gtid, volatile=True)


def _read_only(ctx, index: int, ro, total: int):
    yield ctx.ld(ro, (ctx.gtid * (index + 3)) % total)
    yield ctx.ld(ro, (ctx.gtid + index) % total)


def _phase_body(ctx, phase: Phase, index: int, cells, syncw, noise, ro):
    kind = phase.kind
    if kind is PhaseKind.HANDOFF:
        yield from _handoff(ctx, phase, index, cells, syncw)
    elif kind is PhaseKind.MUTEX:
        yield from _mutex(ctx, phase, index, cells, syncw)
    elif kind is PhaseKind.ATOMICS:
        yield from _atomics(ctx, phase, index, cells)
    elif kind is PhaseKind.BARRIER:
        yield from _barrier_phase(ctx, phase, index, cells)
    elif kind is PhaseKind.DISJOINT:
        yield from _disjoint(ctx, index, noise)
    else:
        yield from _read_only(ctx, index, ro, ctx.nthreads)


def _jitter(ctx, index: int, jitter_seed: int):
    rng = SplitMix64(
        ((jitter_seed * 1000003 + index + 1) << 20)
        ^ (ctx.gtid * 0x9E3779B9)
    )
    yield ctx.compute(1 + rng.next_below(64))


def compile_phase(program: FuzzProgram, index: int, jitter_seed: int = 0):
    """Build the kernel generator for one phase of *program*.

    ``jitter_seed`` != 0 prepends a seed-derived per-thread compute
    delay, deterministically perturbing warp interleavings so a seed
    sweep explores distinct schedules of the *same* program (the memory
    behaviour — and therefore the ground truth — is untouched).
    """
    phase = program.phases[index]

    def fuzz_phase(ctx, cells, syncw, noise, ro):
        if jitter_seed:
            yield from _jitter(ctx, index, jitter_seed)
        yield from _phase_body(ctx, phase, index, cells, syncw, noise, ro)

    fuzz_phase.__name__ = f"fuzz_p{index}_{phase.kind.value}"
    if phase.bug is not Bug.NONE:
        fuzz_phase.__name__ += f"_{phase.bug.value.replace('-', '_')}"
    return fuzz_phase


def compile_kernel(program: FuzzProgram, jitter_seed: int = 0):
    """The program's launch sequence: one kernel generator per phase."""
    return tuple(
        compile_phase(program, index, jitter_seed)
        for index in range(len(program.phases))
    )


def compile_fused(program: FuzzProgram, jitter_seed: int = 0):
    """All phases fused into ONE kernel (not the ground-truth path).

    Fused execution keeps the same conflicting pairs but lets earlier
    phases' synchronization launder the dynamic detector's per-warp
    state, so a racy program may go dynamically undetected.  Useful for
    demonstrating that order-sensitivity; the oracles never use it.
    """
    phases = program.phases

    def fuzz_fused(ctx, cells, syncw, noise, ro):
        if jitter_seed:
            yield from _jitter(ctx, 0, jitter_seed)
        for index, phase in enumerate(phases):
            yield from _phase_body(ctx, phase, index, cells, syncw, noise, ro)

    return fuzz_fused


def run_program(gpu, program: FuzzProgram, jitter_seed: int = 0):
    """Allocate, then launch *program*'s phases in order on *gpu*.

    Works against both the engine :class:`~repro.engine.gpu.GPU` and
    scolint's :class:`~repro.scolint.driver.LintGPU` (identical host
    API).  Returns the launch ``args`` tuple for host-side reads.
    """
    warp_size = gpu.config.threads_per_warp
    args = setup_memory(gpu, program, warp_size)
    block_dim = program.block_dim(warp_size)
    for index in range(len(program.phases)):
        gpu.launch(
            compile_phase(program, index, jitter_seed),
            grid=program.grid,
            block_dim=block_dim,
            args=args,
        )
    return args


def setup_memory(gpu, program: FuzzProgram, warp_size: int):
    """Allocate and initialize the program's arrays on *gpu*.

    Works against both the real :class:`~repro.engine.gpu.GPU` and the
    :class:`~repro.scolint.driver.LintGPU` (identical host API).
    Returns the launch ``args`` tuple.
    """
    n_phases = len(program.phases)
    n_threads = program.grid * program.block_dim(warp_size)
    cells = gpu.alloc(n_phases, "fuzz_cells")
    syncw = gpu.alloc(n_phases, "fuzz_sync")
    noise = gpu.alloc(n_threads, "fuzz_noise")
    ro = gpu.alloc(n_threads, "fuzz_ro")
    gpu.write_array(ro, list(range(n_threads)))
    return (cells, syncw, noise, ro)
