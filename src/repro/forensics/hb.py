"""The happens-before edge catalog: what link each race class severs.

ScoRD's Table IV declares a race when a specific happens-before edge
between the two conflicting accesses cannot be established.  Forensics
names that edge: every :class:`~repro.scord.races.RaceType` maps to one
:class:`HBEdge` describing the missing link, how the hardware state
evidences it, and which static scolint rule (SL-A1…SL-S1) diagnoses the
same defect from the program text — the dynamic verdict and the static
rule are two views of one severed edge, and the bundles record (and the
cross-validation tests check) that they agree.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.scolint.model import RULE_FOR_TYPE, RULES
from repro.scord.races import RaceType


@dataclasses.dataclass(frozen=True)
class HBEdge:
    """One catalog entry: the happens-before link a race class severs."""

    name: str            #: short edge identifier ("device-fence", ...)
    race_type: RaceType
    severed: str         #: what ordering was needed and absent
    repair: str          #: how to restore the edge

    @property
    def scolint_rule(self) -> str:
        """The static rule that diagnoses the same severed edge."""
        return RULE_FOR_TYPE[self.race_type]

    def rule_description(self) -> str:
        return RULES[self.scolint_rule][1]

    def rule_fix(self) -> str:
        return RULES[self.scolint_rule][2]

    def as_dict(self) -> dict:
        return {
            "edge": self.name,
            "race_type": self.race_type.value,
            "severed": self.severed,
            "repair": self.repair,
            "scolint_rule": self.scolint_rule,
            "scolint_description": self.rule_description(),
            "scolint_fix": self.rule_fix(),
            # The bundle-level agreement bit the CI smoke job asserts:
            # the catalog's rule for this race type IS the rule scolint
            # files the same defect under.
            "rule_agrees": RULE_FOR_TYPE.get(self.race_type)
            == self.scolint_rule,
        }


#: race type -> the severed happens-before edge (Table IV, narrated)
EDGE_FOR_TYPE: Dict[RaceType, HBEdge] = {
    RaceType.MISSING_BLOCK_FENCE: HBEdge(
        name="block-fence",
        race_type=RaceType.MISSING_BLOCK_FENCE,
        severed=(
            "the conflicting accesses are in the same threadblock, but the "
            "previous accessor executed no fence (of any scope) and no "
            "barrier separates them — nothing orders the first access "
            "before the second"
        ),
        repair=(
            "order the same-block accesses with __syncthreads(), or a "
            "__threadfence_block() plus an atomic handoff"
        ),
    ),
    RaceType.MISSING_DEVICE_FENCE: HBEdge(
        name="device-fence",
        race_type=RaceType.MISSING_DEVICE_FENCE,
        severed=(
            "the conflicting accesses are in different threadblocks and "
            "the previous accessor executed no device-scope fence after "
            "its access — the write was never made visible device-wide "
            "before the conflicting access"
        ),
        repair=(
            "execute __threadfence() after the write and hand off through "
            "a device-scope atomic (or share a device-scoped lock)"
        ),
    ),
    RaceType.SCOPED_FENCE: HBEdge(
        name="fence-scope",
        race_type=RaceType.SCOPED_FENCE,
        severed=(
            "a fence *was* executed between the accesses, but at block "
            "scope, and the conflict spans threadblocks — the fence's "
            "scope does not cover the communication span"
        ),
        repair="widen __threadfence_block() to __threadfence() (device scope)",
    ),
    RaceType.NOT_STRONG: HBEdge(
        name="strong-access",
        race_type=RaceType.NOT_STRONG,
        severed=(
            "a fence chain could order the accesses, but fences only order "
            "*strong* operations and at least one side performed a plain "
            "(non-volatile, non-atomic) access — the edge never attaches "
            "to it"
        ),
        repair=(
            "mark the conflicting plain access volatile/strong, or replace "
            "the polling load with an atomic"
        ),
    ),
    RaceType.SCOPED_ATOMIC: HBEdge(
        name="atomic-scope",
        race_type=RaceType.SCOPED_ATOMIC,
        severed=(
            "synchronization goes through an atomic performed at block "
            "scope while the conflicting access is in another threadblock "
            "— a block-scope atomic synchronizes only within its block, "
            "so no edge reaches the other side"
        ),
        repair="widen the atomic to device scope (drop the _block suffix)",
    ),
    RaceType.LOCK: HBEdge(
        name="lock-order",
        race_type=RaceType.LOCK,
        severed=(
            "both sides touch the data under locksets with an empty "
            "intersection (different locks, or none) — no common lock "
            "creates the release/acquire edge between the critical "
            "sections"
        ),
        repair="protect both accesses with the same device-scoped lock",
    ),
}


def edge_for(race_type: RaceType) -> HBEdge:
    return EDGE_FOR_TYPE[race_type]


def evidence_lines(race_type: RaceType, prov: Optional[dict]) -> List[str]:
    """Narrate the hardware state that evidences the severed edge.

    *prov* is the detector's provenance dict (``detector.provenance``);
    without it (comparator detectors, degraded captures) the evidence is
    simply omitted and the bundle still names the edge.
    """
    if not prov:
        return []
    cur = prov.get("current", {})
    prev = prov.get("previous", {})
    out = []
    if race_type in (RaceType.MISSING_BLOCK_FENCE,
                     RaceType.MISSING_DEVICE_FENCE,
                     RaceType.SCOPED_FENCE):
        blk_moved = (prev.get("blk_fence_now")
                     != prev.get("blk_fence_at_access"))
        dev_moved = (prev.get("dev_fence_now")
                     != prev.get("dev_fence_at_access"))
        out.append(
            f"previous accessor's fence counters at its access: "
            f"block={prev.get('blk_fence_at_access')} "
            f"device={prev.get('dev_fence_at_access')}; now: "
            f"block={prev.get('blk_fence_now')} "
            f"device={prev.get('dev_fence_now')}"
        )
        if race_type is RaceType.SCOPED_FENCE:
            out.append(
                "the block counter advanced (a block-scope fence ran) but "
                "the device counter did not — the fence was too narrow"
            )
        elif not blk_moved and not dev_moved:
            out.append(
                "neither counter advanced — no fence of any scope was "
                "executed between the accesses"
            )
        elif race_type is RaceType.MISSING_DEVICE_FENCE and not dev_moved:
            out.append(
                "the device counter did not advance — no device-scope "
                "fence ordered the accesses across blocks"
            )
    elif race_type is RaceType.NOT_STRONG:
        weak = []
        if not cur.get("strong", True):
            weak.append("the current access is a plain (non-strong) op")
        if not prev.get("strong", True):
            weak.append("the previous access was a plain (non-strong) op")
        out.extend(weak or
                   ["one side's access lost the strong qualifier"])
    elif race_type is RaceType.SCOPED_ATOMIC:
        side = "previous" if prev.get("atomic") else "current"
        scope = (prev if prev.get("atomic") else cur).get("scope")
        out.append(
            f"the {side} access is an atomic at {scope or 'block'} scope "
            f"while the conflict spans threadblocks "
            f"(block {cur.get('block')} vs block {prev.get('block')})"
        )
    elif race_type is RaceType.LOCK:
        out.append(
            f"lock bloom filters: current=0x{cur.get('lock_bloom', 0):04x} "
            f"previous=0x{prev.get('lock_bloom', 0):04x} — empty "
            f"intersection, no common lock held"
        )
    barrier = prov.get("barrier_now")
    prev_barrier = prev.get("barrier_at_access")
    if barrier is not None and prev_barrier is not None \
            and barrier == prev_barrier \
            and cur.get("block") == prev.get("block"):
        out.append(
            f"block barrier phase unchanged ({barrier}) — no "
            f"__syncthreads() separates the accesses either"
        )
    return out
