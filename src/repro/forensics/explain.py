"""``scord-experiments explain``: forensic explanations on demand.

Targets come in three shapes:

* ``micro:<name>`` — re-run the micro-benchmark under ScoRD with a
  full-capture flight recorder and explain every race it detects;
* ``app:NAME[+flag]`` — same for a Scor application (optionally with
  one race-injection flag enabled);
* a path — a ``forensics-report/v1`` bundle JSON (or an ``index.json``
  / bundle directory written by ``--forensics-out``), rendered without
  re-simulating anything.  An ``mc-report/v1`` file (or a list of
  them, as ``scord-experiments mc --json-out`` writes) is recognized
  too: its witness decision vector is replayed through the controlled
  scheduler, deterministically reproducing the proven race, and the
  reproduced execution is explained like any live one.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.forensics.bundle import bundles_for_gpu


def render_bundle(bundle: dict, with_trace: bool = True) -> str:
    """A human-readable rendering: narrative plus the trace slice."""
    lines = [
        f"=== forensic bundle ({bundle.get('schema', '?')}, "
        f"source {bundle.get('source', '?')}) ===",
        bundle.get("narrative", "(no narrative)"),
    ]
    slice_events = bundle.get("trace_slice") or []
    if with_trace and slice_events:
        lines.append("")
        lines.append(f"trace slice ({len(slice_events)} event(s), "
                     f"oldest first):")
        for event in slice_events:
            cycle = event.get("cycle", "?")
            kind = event.get("kind", "?")
            who = f"b{event.get('block', '?')}w{event.get('warp', '?')}"
            detail = []
            if event.get("addr") is not None:
                detail.append(f"addr=0x{event['addr']:x}")
            if event.get("array"):
                detail.append(f"array={event['array']}")
            if event.get("scope"):
                detail.append(f"scope={event['scope']}")
            if event.get("strong") is not None:
                detail.append("strong" if event["strong"] else "plain")
            if event.get("pc"):
                pc = event["pc"]
                detail.append(f"pc={pc[0]}:{pc[1]}")
            if kind == "race":
                detail.append(f"type={event.get('extra', {}).get('type')}")
            lines.append(
                f"  cycle {cycle:>8}  {kind:<7} {who:<8} "
                + " ".join(detail)
            )
    return "\n".join(lines)


def render_bundles(bundles: List[dict], with_trace: bool = True) -> str:
    if not bundles:
        return "no races detected: nothing to explain"
    parts = [render_bundle(bundle, with_trace=with_trace)
             for bundle in bundles]
    return "\n\n".join(parts)


def _load_bundles_from_path(path: str) -> List[dict]:
    """Bundle(s) from a bundle JSON, an index.json, or a bundle dir."""
    if os.path.isdir(path):
        index = os.path.join(path, "index.json")
        if not os.path.exists(index):
            raise FileNotFoundError(
                f"{path!r} has no index.json — not a forensics bundle "
                f"directory"
            )
        return _load_bundles_from_path(index)
    with open(path, "r") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        if payload and all(
            isinstance(item, dict)
            and item.get("schema") == "mc-report/v1"
            for item in payload
        ):
            out = []
            for item in payload:
                out.extend(_bundles_from_mc_report(item))
            return out
        raise ValueError(f"{path!r} is not a forensics bundle or index")
    if payload.get("schema") == "mc-report/v1":
        return _bundles_from_mc_report(payload)
    if "narrative" in payload or "race" in payload:
        return [payload]
    if "bundles" in payload:  # an index.json: follow the file references
        base = os.path.dirname(os.path.abspath(path))
        out = []
        for entry in payload["bundles"]:
            with open(os.path.join(base, entry["file"]), "r") as handle:
                out.append(json.load(handle))
        return out
    raise ValueError(f"{path!r} is not a forensics bundle or index")


def _bundles_from_mc_report(report: dict) -> List[dict]:
    """Replay an ``mc-report/v1`` witness; explain the reproduced race.

    A ``proven_race_free`` / ``budget_exhausted`` report carries no
    witness: the fair schedule is replayed instead, and (by the proof)
    yields no bundles — the rendering then documents the clean run.
    Only suite targets replay (``micro:``/``app:``/``litmus:``); a fuzz
    target's program is not recoverable from its label.
    """
    from repro.common.errors import ReproError
    from repro.mc.report import replay_witness
    from repro.mc.targets import resolve_target

    try:
        target = resolve_target(
            report["target"], detector=report.get("detector", "scord")
        )
        gpu = replay_witness(target, report.get("witness"))
    except ReproError as err:
        raise ValueError(
            f"cannot replay mc witness for {report.get('target')!r}: {err}"
        ) from err
    return bundles_for_gpu(gpu, source=f"mc-witness:{report['target']}")


def _rerun_target(target: str, quiet: bool = True):
    """Simulate ``micro:<name>`` / ``app:NAME[+flag]`` under capture."""
    from repro.arch.detector_config import DetectorConfig
    from repro.telemetry import FlightConfig, Telemetry, TraceConfig

    telemetry = Telemetry(
        TraceConfig(enabled=False), flight=FlightConfig(mode="full")
    )
    kind, _, rest = target.partition(":")
    if kind == "micro":
        from repro.scor.micro.base import run_micro
        from repro.scor.micro.registry import micro_by_name

        gpu = run_micro(
            micro_by_name(rest),
            detector_config=DetectorConfig.scord(),
            telemetry=telemetry,
        )
    elif kind == "app":
        from repro.scor.apps.base import run_app
        from repro.scor.apps.registry import app_by_name

        app_name, _, flag = rest.partition("+")
        app = app_by_name(app_name)(races=(flag,) if flag else ())
        gpu = run_app(
            app,
            detector_config=DetectorConfig.scord(),
            telemetry=telemetry,
        )
    else:
        raise KeyError(
            f"unknown explain target {target!r}: use micro:<name>, "
            f"app:NAME[+flag], or a path to a forensics bundle"
        )
    return gpu, telemetry


def explain_target(
    target: str, out_dir: Optional[str] = None
) -> Tuple[List[dict], str]:
    """Resolve *target*, producing (bundles, rendered text).

    With *out_dir*, re-simulated targets also persist their bundles
    there (path targets are already on disk and are not re-written).
    """
    if os.path.exists(target) or target.endswith(".json"):
        bundles = _load_bundles_from_path(target)
        return bundles, render_bundles(bundles)
    gpu, _ = _rerun_target(target)
    bundles = bundles_for_gpu(gpu, source=f"explain:{target}")
    if out_dir and bundles:
        from repro.forensics.bundle import write_bundles

        write_bundles(bundles, out_dir)
    return bundles, render_bundles(bundles)


def explain_main(argv) -> int:
    """``scord-experiments explain <target>`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="scord-experiments explain",
        description="Explain detected races: re-run a micro/app under a "
        "full-capture flight recorder and print forensic bundles naming "
        "both racing accesses and the severed happens-before edge, or "
        "render an existing bundle file.",
    )
    parser.add_argument(
        "targets", nargs="+",
        help="micro:<name>, app:NAME[+flag], or a path to a "
        "forensics-report/v1 bundle JSON / index.json / bundle directory",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="omit the trace-slice section from the rendering",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="also write the bundles (JSON + narrative + index) to DIR",
    )
    args = parser.parse_args(argv)
    status = 0
    for target in args.targets:
        try:
            bundles, _ = explain_target(target, out_dir=args.out)
        except (KeyError, FileNotFoundError, ValueError) as err:
            print(f"[explain-error] {err}")
            status = 1
            continue
        print(f"--- {target}: {len(bundles)} bundle(s) ---")
        print(render_bundles(bundles, with_trace=not args.no_trace))
        print()
    return status
