"""CI forensics smoke: one racy target per race type, bundles validated.

``python -m repro.forensics.smoke --out DIR`` runs one racy
micro-benchmark for every :class:`~repro.scord.races.RaceType` a micro
can surface, plus a constructed ``WEAK_POLL`` fuzz program for
``NOT_STRONG`` (no micro injects it — the 32-micro suite is pinned),
each under a full-capture flight recorder.  It then asserts, for every
detected race:

* a forensic bundle exists naming both racing accesses;
* the severed happens-before edge matches the race type's catalog entry;
* the bundle's scolint rule agrees with the static classification
  (``RULE_FOR_TYPE``).

Exit status is non-zero on any violation; bundles are written to
``--out`` for upload as CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.forensics.bundle import bundles_for_gpu, forensics_summary, write_bundles
from repro.forensics.hb import edge_for
from repro.scolint.model import RULE_FOR_TYPE
from repro.scord.races import RaceType

#: one representative racy micro per micro-coverable race type
SMOKE_MICROS = {
    RaceType.MISSING_BLOCK_FENCE: "lock_none_same_block",
    RaceType.MISSING_DEVICE_FENCE: "fence_missing_cross_block",
    RaceType.SCOPED_FENCE: "fence_block_scope_cross_block",
    RaceType.SCOPED_ATOMIC: "atomic_block_scope_cross_block",
    RaceType.LOCK: "lock_missing_on_store",
}


def weak_poll_micro():
    """A correct fence+flag handoff whose consumer load is *plain*.

    No registered micro injects NOT_STRONG (the 32-micro suite is
    pinned), so smoke coverage for the strong-access edge comes from
    this constructed, unregistered micro: the producer publishes
    correctly (store, device fence, device-atomic flag) but the
    consumer reads the payload with a plain non-volatile load — the
    fence chain exists and fences only order strong operations, which
    is exactly the severed edge the catalog names.
    """
    from repro.isa.scopes import Scope
    from repro.scor.micro.base import (
        Micro,
        Placement,
        T1_DELAY,
        set_flag,
        wait_flag,
    )

    def kernel(ctx, role, mem):
        if role == 0:
            yield ctx.st(mem.data, 0, 42, volatile=True)
            yield ctx.fence(Scope.DEVICE)
            yield from set_flag(ctx, mem.flag)
        elif role == 1:
            yield ctx.compute(T1_DELAY)
            if (yield from wait_flag(ctx, mem.flag)):
                value = yield ctx.ld(mem.data, 0)  # plain, not strong
                yield ctx.st(mem.aux, 0, value, volatile=True)

    return Micro(
        name="weak_poll_consumer",
        category="fence",
        racey=True,
        expected_types=frozenset({RaceType.NOT_STRONG}),
        placement=Placement.CROSS_BLOCK,
        description="fence+flag handoff, but the consumer load is plain",
        kernel=kernel,
    )


def _capture_telemetry():
    from repro.telemetry import FlightConfig, Telemetry, TraceConfig

    return Telemetry(
        TraceConfig(enabled=False), flight=FlightConfig(mode="full")
    )


def _run_micro_captured(name: str):
    from repro.scor.micro.base import run_micro
    from repro.scor.micro.registry import micro_by_name
    from repro.arch.detector_config import DetectorConfig

    return run_micro(
        micro_by_name(name),
        detector_config=DetectorConfig.scord(),
        telemetry=_capture_telemetry(),
    )


def _run_weak_poll_captured():
    from repro.arch.detector_config import DetectorConfig
    from repro.scor.micro.base import run_micro

    return run_micro(
        weak_poll_micro(),
        detector_config=DetectorConfig.scord(),
        telemetry=_capture_telemetry(),
    )


def check_bundles(target: str, gpu, expected_types) -> list:
    """Validate the forensic invariants; returns failure strings."""
    failures = []
    races = gpu.races.unique_races
    bundles = bundles_for_gpu(gpu, source=f"smoke:{target}")
    if not races:
        failures.append(f"{target}: expected a detected race, saw none")
    if len(bundles) != len(races):
        failures.append(
            f"{target}: {len(races)} unique race(s) but "
            f"{len(bundles)} bundle(s)"
        )
    detected = {record.race_type for record in races}
    missing = set(expected_types) - detected
    if missing:
        failures.append(
            f"{target}: expected race type(s) not detected: "
            f"{sorted(t.value for t in missing)}"
        )
    for bundle in bundles:
        race_type = RaceType(bundle["race"]["type"])
        edge = edge_for(race_type)
        if bundle["hb"]["edge"] != edge.name:
            failures.append(
                f"{target}: bundle names edge {bundle['hb']['edge']!r}, "
                f"catalog says {edge.name!r} for {race_type.value}"
            )
        if bundle["hb"]["scolint_rule"] != RULE_FOR_TYPE[race_type]:
            failures.append(
                f"{target}: bundle rule {bundle['hb']['scolint_rule']} "
                f"!= scolint {RULE_FOR_TYPE[race_type]}"
            )
        if not bundle["hb"]["rule_agrees"]:
            failures.append(f"{target}: rule_agrees is false")
        accesses = bundle["accesses"]
        for side in ("current", "previous"):
            acc = accesses[side]
            if acc["block"] is None or acc["warp"] is None:
                failures.append(
                    f"{target}: bundle does not name the {side} access"
                )
        if not bundle.get("narrative"):
            failures.append(f"{target}: bundle has no narrative")
        if not bundle.get("trace_slice"):
            failures.append(f"{target}: bundle has an empty trace slice")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.forensics.smoke",
        description="Run one racy target per race type under flight "
        "capture and validate the forensic bundles.",
    )
    parser.add_argument(
        "--out", metavar="DIR", default="forensics-smoke",
        help="directory for the bundle artifacts (default "
        "./forensics-smoke)",
    )
    args = parser.parse_args(argv)

    failures = []
    all_bundles = []
    for race_type, micro_name in sorted(
        SMOKE_MICROS.items(), key=lambda item: item[0].value
    ):
        target = f"micro:{micro_name}"
        print(f"[smoke] {target} (expect {race_type.value})", flush=True)
        gpu = _run_micro_captured(micro_name)
        failures += check_bundles(target, gpu, {race_type})
        bundles = bundles_for_gpu(gpu, source=f"smoke:{target}")
        write_bundles(
            bundles, os.path.join(args.out, micro_name)
        )
        all_bundles += bundles

    target = "micro:weak_poll_consumer (unregistered)"
    print(f"[smoke] {target} (expect not-strong)", flush=True)
    gpu = _run_weak_poll_captured()
    failures += check_bundles(target, gpu, {RaceType.NOT_STRONG})
    bundles = bundles_for_gpu(gpu, source=f"smoke:{target}")
    write_bundles(bundles, os.path.join(args.out, "weak_poll_consumer"))
    all_bundles += bundles

    summary = forensics_summary(all_bundles)
    summary["failures"] = failures
    os.makedirs(args.out, exist_ok=True)
    with open(os.path.join(args.out, "summary.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"[smoke] {summary['race_bundles']} bundle(s), "
        f"{summary['rule_agreement']} rule-agreeing, "
        f"{len(failures)} failure(s)"
    )
    for failure in failures:
        print(f"[smoke-FAIL] {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
