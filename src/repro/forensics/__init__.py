"""Race forensics: happens-before explanations for detected races.

Built on the flight recorder (:mod:`repro.telemetry.flight`) and the
detector's verdict provenance, this package reconstructs *why* each
detected race raced — the two conflicting accesses, the last
synchronization on each side, and the severed happens-before edge —
and emits ``forensics-report/v1`` bundles cross-referenced against the
static scolint rule catalog.  See ``docs/forensics.md``.
"""

from repro.forensics.bundle import (
    FORENSICS_SCHEMA,
    build_bundle,
    bundle_from_disagreement,
    bundles_for_capture,
    bundles_for_gpu,
    canonical_bundle_dict,
    canonical_bundles_json,
    forensics_summary,
    narrative,
    write_bundles,
)
from repro.forensics.explain import (
    explain_target,
    render_bundle,
    render_bundles,
)
from repro.forensics.hb import EDGE_FOR_TYPE, HBEdge, edge_for, evidence_lines

__all__ = [
    "FORENSICS_SCHEMA",
    "EDGE_FOR_TYPE",
    "HBEdge",
    "build_bundle",
    "bundle_from_disagreement",
    "bundles_for_capture",
    "bundles_for_gpu",
    "canonical_bundle_dict",
    "canonical_bundles_json",
    "edge_for",
    "evidence_lines",
    "explain_target",
    "forensics_summary",
    "narrative",
    "render_bundle",
    "render_bundles",
    "write_bundles",
]
