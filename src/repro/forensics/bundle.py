"""Forensic bundles: reconstruct *why* each detected race raced.

A bundle is the ``forensics-report/v1`` artifact emitted per detected
race: the two racing accesses, the last synchronization operation seen
on each side, the severed happens-before edge (from
:mod:`repro.forensics.hb`), the static scolint rule that diagnoses the
same defect, a slice of the flight-recorder trace around the race, and
a human-readable narrative.  Bundles are built from three sources that
degrade gracefully:

* the :class:`~repro.scord.races.RaceRecord` itself (always present);
* the detector's provenance dict (ScoRD only — the hardware state the
  verdict was computed from);
* the flight recorder (sync context + trace slice; absent events just
  shrink the slice).

The *canonical* forms (:func:`canonical_bundle_dict`,
:func:`canonical_bundles_json`) strip volatile detail — cycles, raw
addresses, block/warp ids — mirroring the PR 2 golden-trace pattern, so
committed fixtures only break when forensic *classification* drifts.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.forensics.hb import edge_for, evidence_lines
from repro.scord.races import RaceRecord

#: bump when the bundle shape changes incompatibly
FORENSICS_SCHEMA = "forensics-report/v1"


def _access_dicts(record: RaceRecord, prov: Optional[dict]) -> Tuple[dict, dict]:
    """(current, previous) access descriptions, provenance-enriched."""
    current = {
        "block": record.block_id,
        "warp": record.warp_id,
        "kind": None,
        "strong": None,
        "atomic": None,
        "scope": None,
        "pc": [record.pc[0], record.pc[1]],
    }
    previous = {
        "block": record.prev_block_id,
        "warp": record.prev_warp_id,
        "kind": None,
        "strong": None,
        "atomic": None,
        "scope": None,
        # The metadata word keeps no instruction pointer for the
        # previous access — hardware-faithful: ScoRD reports the pc of
        # the access that *trips* the check.
        "pc": None,
    }
    if prov:
        p_cur = prov.get("current", {})
        p_prev = prov.get("previous", {})
        current.update({
            "kind": p_cur.get("kind"),
            "strong": p_cur.get("strong"),
            "atomic": p_cur.get("atomic"),
            "scope": p_cur.get("scope"),
            "lane": p_cur.get("lane"),
        })
        previous.update({
            "kind": "write" if p_prev.get("write") else "read",
            "strong": p_prev.get("strong"),
            "atomic": p_prev.get("atomic"),
            "scope": p_prev.get("scope"),
            "lane": p_prev.get("lane"),
        })
    return current, previous


def build_bundle(
    record: RaceRecord,
    prov: Optional[dict] = None,
    flight=None,
    source: str = "scord",
    occurrences: int = 1,
    slice_limit: int = 48,
) -> dict:
    """Assemble one ``forensics-report/v1`` bundle for *record*."""
    edge = edge_for(record.race_type)
    current, previous = _access_dicts(record, prov)
    sync = {"current_last_sync": None, "previous_last_sync": None}
    trace_slice: List[dict] = []
    if flight is not None and flight.enabled:
        cur_sync = flight.last_sync_for(
            record.block_id, record.warp_id, until=record.cycle
        )
        prev_sync = flight.last_sync_for(
            record.prev_block_id, record.prev_warp_id, until=record.cycle
        )
        sync["current_last_sync"] = cur_sync.to_dict() if cur_sync else None
        sync["previous_last_sync"] = (
            prev_sync.to_dict() if prev_sync else None
        )
        trace_slice = [
            event.to_dict()
            for event in flight.slice_for(
                addr=record.addr,
                warps=[
                    (record.block_id, record.warp_id),
                    (record.prev_block_id, record.prev_warp_id),
                ],
                until=record.cycle,
                limit=slice_limit,
            )
        ]
    bundle = {
        "schema": FORENSICS_SCHEMA,
        "source": source,
        "race": {
            "type": record.race_type.value,
            "scope_class": record.scope_class.value,
            "array": record.array_name,
            "kernel": record.pc[0],
            "line": record.pc[1],
            "addr": record.addr,
            "cycle": record.cycle,
            "occurrences": occurrences,
        },
        "accesses": {"current": current, "previous": previous},
        "sync": sync,
        "hb": dict(
            edge.as_dict(),
            evidence=evidence_lines(record.race_type, prov),
        ),
        "trace_slice": trace_slice,
    }
    bundle["narrative"] = narrative(bundle)
    return bundle


def narrative(bundle: dict) -> str:
    """The human-readable explanation embedded in (and derived from) a bundle."""
    race = bundle["race"]
    cur = bundle["accesses"]["current"]
    prev = bundle["accesses"]["previous"]
    hb = bundle["hb"]
    target = race.get("array") or (
        f"0x{race['addr']:x}" if race.get("addr") is not None else "?"
    )

    def side(label, acc):
        bits = [f"block {acc['block']} warp {acc['warp']}"]
        if acc.get("kind"):
            qual = []
            if acc.get("atomic"):
                qual.append(f"{acc.get('scope') or 'device'}-scope atomic")
            elif acc.get("strong"):
                qual.append("strong")
            elif acc.get("strong") is False:
                qual.append("plain")
            bits.append(" ".join(qual + [acc["kind"]]))
        if acc.get("pc"):
            bits.append(f"at {acc['pc'][0]}:{acc['pc'][1]}")
        return f"  {label:<9} " + ", ".join(bits)

    lines = [
        f"race: {race['type']} on {target} "
        f"({race['scope_class']}, kernel {race['kernel']!r} "
        f"line {race['line']})",
        side("current:", cur),
        side("previous:", prev),
    ]
    for label, key in (("current", "current_last_sync"),
                       ("previous", "previous_last_sync")):
        event = bundle["sync"].get(key)
        if event is None:
            lines.append(f"  last sync on {label} side: none observed")
        else:
            scope = f" ({event['scope']})" if event.get("scope") else ""
            lines.append(
                f"  last sync on {label} side: {event['kind']}{scope} "
                f"at cycle {event['cycle']}"
            )
    lines.append(f"severed happens-before edge: {hb['edge']}")
    lines.append(f"  {hb['severed']}")
    for line in hb.get("evidence", []):
        lines.append(f"  evidence: {line}")
    lines.append(
        f"static cross-reference: {hb['scolint_rule']} — "
        f"{hb['scolint_description']}"
    )
    lines.append(f"suggested repair: {hb['scolint_fix']}")
    return "\n".join(lines)


def bundles_for_capture(
    capture, flight=None, source: str = "scord", unique: bool = True
) -> List[dict]:
    """One bundle per race in a :class:`FlightCapture`'s race log.

    ``unique=True`` collapses repeat occurrences of one (type, pc) race
    onto the first occurrence (Table VI's unique-race identity), with
    the repeat count recorded in the bundle.
    """
    if flight is None:
        flight = capture.flight
    chosen = {}
    counts = {}
    for record, prov in capture.race_log:
        key = record.key if unique else (record.key, len(chosen))
        counts[key] = counts.get(key, 0) + 1
        if key not in chosen:
            chosen[key] = (record, prov)
    return [
        build_bundle(
            record, prov, flight=flight, source=source,
            occurrences=counts[key],
        )
        for key, (record, prov) in chosen.items()
    ]


def bundles_for_gpu(gpu, source: str = "scord", unique: bool = True) -> List[dict]:
    """Bundles for every race a flight-captured GPU run detected."""
    capture = getattr(gpu, "flight_capture", None)
    if capture is None:
        raise ValueError(
            "forensics needs flight capture: run with a Telemetry bundle "
            "whose FlightConfig is set (CLI: --flight)"
        )
    return bundles_for_capture(capture, source=source, unique=unique)


def bundle_from_disagreement(disagreement: dict) -> dict:
    """A forensic bundle for a fuzz-campaign disagreement.

    Differential disagreements have no single RaceRecord — the two
    oracles disagree about the *verdict* — so the bundle records both
    verdicts, the expected edge(s) for the constructed ground truth, and
    the disagreement classification as the narrative.
    """
    from repro.scord.races import RaceType

    expected_edges = []
    program = disagreement.get("program") or {}
    static = disagreement.get("static") or {}
    dynamic = disagreement.get("dynamic") or {}
    for value in sorted(
        set(static.get("types", [])) | set(dynamic.get("types", []))
    ):
        try:
            expected_edges.append(edge_for(RaceType(value)).as_dict())
        except (ValueError, KeyError):
            continue
    bundle = {
        "schema": FORENSICS_SCHEMA,
        "source": "fuzz",
        "disagreement": {
            "kind": disagreement.get("kind"),
            "detail": disagreement.get("detail"),
            "digest": disagreement.get("digest"),
            "program": disagreement.get("shrunk_describe"),
        },
        "verdicts": {"static": static, "dynamic": dynamic},
        "hb_candidates": expected_edges,
        "program": program,
    }
    lines = [
        f"fuzz disagreement: {disagreement.get('kind')}",
        f"  {disagreement.get('detail')}",
        f"  program: {disagreement.get('shrunk_describe')}",
    ]
    for edge in expected_edges:
        lines.append(
            f"  candidate edge: {edge['edge']} ({edge['race_type']}, "
            f"rule {edge['scolint_rule']})"
        )
    bundle["narrative"] = "\n".join(lines)
    return bundle


# ----------------------------------------------------------------------
# Canonical (golden-stable) forms — the PR 2 golden-trace pattern
# ----------------------------------------------------------------------
def canonical_bundle_dict(bundle: dict) -> dict:
    """Strip volatile detail; keep the forensic *classification*.

    Cycles, raw addresses, block/warp ids and the trace slice are
    timing- and layout-dependent; the race identity, both access
    shapes, the named edge and the static rule are the verdict.
    """
    race = bundle["race"]
    hb = bundle["hb"]

    def canon_access(acc: dict) -> dict:
        return {
            "kind": acc.get("kind"),
            "strong": acc.get("strong"),
            "atomic": acc.get("atomic"),
            "scope": acc.get("scope"),
        }

    def canon_sync(event) -> Optional[dict]:
        if event is None:
            return None
        return {"kind": event["kind"], "scope": event.get("scope")}

    return {
        "schema": bundle["schema"],
        "source": bundle["source"],
        "race": {
            "type": race["type"],
            "scope_class": race["scope_class"],
            "array": race.get("array") or "?",
            "kernel": race["kernel"],
            "line": race["line"],
        },
        "accesses": {
            "current": canon_access(bundle["accesses"]["current"]),
            "previous": canon_access(bundle["accesses"]["previous"]),
        },
        "sync": {
            "current_last_sync": canon_sync(
                bundle["sync"].get("current_last_sync")
            ),
            "previous_last_sync": canon_sync(
                bundle["sync"].get("previous_last_sync")
            ),
        },
        "hb": {
            "edge": hb["edge"],
            "scolint_rule": hb["scolint_rule"],
            "rule_agrees": hb["rule_agrees"],
        },
    }


def canonical_bundles_json(bundles: List[dict]) -> str:
    """Byte-stable JSON of the canonical bundle set (golden fixtures).

    Sorted by race identity, rendered with sorted keys, two-space
    indent, trailing newline — compared bit-for-bit by the golden
    regression tests.
    """
    canonical = sorted(
        (canonical_bundle_dict(bundle) for bundle in bundles),
        key=lambda c: (
            c["race"]["type"], c["race"]["kernel"],
            c["race"]["line"], c["race"]["array"],
        ),
    )
    return json.dumps(
        {"schema": FORENSICS_SCHEMA, "bundles": canonical},
        sort_keys=True,
        indent=2,
    ) + "\n"


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def write_bundles(bundles: List[dict], out_dir, prefix: str = "") -> List[str]:
    """Write each bundle as JSON + narrative text; returns the paths.

    Files are ``<prefix><NNN>-<race type>.json`` plus a ``.txt`` twin of
    the narrative, and an ``index.json`` summarizing the directory.
    """
    os.makedirs(out_dir, exist_ok=True)
    written = []
    index = []
    for number, bundle in enumerate(bundles):
        label = (
            bundle.get("race", {}).get("type")
            or bundle.get("disagreement", {}).get("kind")
            or "bundle"
        )
        stem = f"{prefix}{number:03d}-{label}"
        json_path = os.path.join(out_dir, stem + ".json")
        with open(json_path, "w") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
            handle.write("\n")
        text_path = os.path.join(out_dir, stem + ".txt")
        with open(text_path, "w") as handle:
            handle.write(bundle.get("narrative", "") + "\n")
        written.extend([json_path, text_path])
        entry = {"file": os.path.basename(json_path), "source": bundle["source"]}
        if "race" in bundle:
            entry.update({
                "type": bundle["race"]["type"],
                "edge": bundle["hb"]["edge"],
                "rule": bundle["hb"]["scolint_rule"],
            })
        else:
            entry["kind"] = bundle.get("disagreement", {}).get("kind")
        index.append(entry)
    index_path = os.path.join(out_dir, f"{prefix}index.json")
    with open(index_path, "w") as handle:
        json.dump(
            {"schema": FORENSICS_SCHEMA, "bundles": index},
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    written.append(index_path)
    return written


def forensics_summary(bundles: List[dict]) -> dict:
    """The manifest ``forensics`` section: counts by edge/type/rule."""
    by_edge = {}
    by_type = {}
    agree = 0
    race_bundles = 0
    for bundle in bundles:
        if "race" not in bundle:
            continue
        race_bundles += 1
        edge = bundle["hb"]["edge"]
        by_edge[edge] = by_edge.get(edge, 0) + 1
        race_type = bundle["race"]["type"]
        by_type[race_type] = by_type.get(race_type, 0) + 1
        if bundle["hb"].get("rule_agrees"):
            agree += 1
    return {
        "schema": FORENSICS_SCHEMA,
        "bundles": len(bundles),
        "race_bundles": race_bundles,
        "rule_agreement": agree,
        "by_edge": dict(sorted(by_edge.items())),
        "by_type": dict(sorted(by_type.items())),
    }
