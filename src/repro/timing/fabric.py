"""The SM↔L2↔DRAM fabric.

``TimingFabric`` owns the shared timing structures — the two NoC link
directions, the banked L2 (tags via :class:`~repro.mem.cache.SetAssocCache`,
occupancy via per-bank :class:`~repro.timing.resource.QueuedResource`), and
the DRAM channels — and composes them into the two paths the engine and the
detector use:

* :meth:`round_trip` — an SM-originated request (L1 miss, volatile access,
  device atomic) travelling NoC→L2(→DRAM)→NoC.
* :meth:`l2_side_access` — a detector-originated metadata access that starts
  at the L2 (the detector hangs off the interconnect next to the L2 per
  Fig. 6), contending for L2 banks and DRAM but not for the SM-side links.

Both consult the *same* L2 tag array, so metadata traffic steals L2 capacity
from data exactly as the paper describes ("metadata entries also contend
with normal data for L2 capacity").
"""

from __future__ import annotations

from typing import List

from repro.arch.config import GPUConfig
from repro.common.stats import CounterBag
from repro.mem.cache import SetAssocCache
from repro.timing.dram import DramModel
from repro.timing.resource import QueuedResource

# Occupancy (not latency) of one request at an L2 bank; banks are pipelined.
_L2_BANK_OCCUPANCY = 2


class TimingFabric:
    """Shared memory-system timing state for one simulated GPU."""

    def __init__(self, config: GPUConfig, stats: CounterBag):
        self.config = config
        self.stats = stats
        self.noc_up = QueuedResource("noc.up")
        self.noc_down = QueuedResource("noc.down")
        self.l2_banks: List[QueuedResource] = [
            QueuedResource(f"l2.bank{i}") for i in range(config.l2_banks)
        ]
        self.l2 = SetAssocCache(
            "l2",
            config.l2_size_bytes,
            config.l2_assoc,
            config.line_size_bytes,
            stats,
        )
        self.dram = DramModel(
            config.dram_channels,
            config.dram_timing,
            config.dram_row_bytes,
            config.line_size_bytes,
            stats,
        )
        # Hot-path hoists: these run once per NoC packet / L2 request.
        self._bpc = config.noc_bytes_per_cycle
        self._noc_lat = config.noc_base_latency
        self._l2_hit_lat = config.l2_hit_latency
        self._line = config.line_size_bytes
        self._nbanks = len(self.l2_banks)
        self._c = stats.counters()

    # ------------------------------------------------------------------
    # Component hops
    # ------------------------------------------------------------------
    def send_up(self, now: int, payload_bytes: int) -> int:
        """Reserve the SM→L2 link for one packet; return arrival time."""
        # ceil_div + QueuedResource.reserve, hand-inlined (hot path).
        service = -(-payload_bytes // self._bpc)
        c = self._c
        try:
            c["noc.packets"] += 1
        except KeyError:
            c["noc.packets"] = 1
        try:
            c["noc.bytes"] += payload_bytes
        except KeyError:
            c["noc.bytes"] = payload_bytes
        link = self.noc_up
        next_free = link.next_free
        start = now if now > next_free else next_free
        link.next_free = start + service
        link.busy_cycles += service
        link.requests += 1
        return start + service + self._noc_lat

    def send_down(self, now: int, payload_bytes: int) -> int:
        """Reserve the L2→SM link for one packet; return arrival time."""
        service = -(-payload_bytes // self._bpc)
        c = self._c
        try:
            c["noc.packets"] += 1
        except KeyError:
            c["noc.packets"] = 1
        try:
            c["noc.bytes"] += payload_bytes
        except KeyError:
            c["noc.bytes"] = payload_bytes
        link = self.noc_down
        next_free = link.next_free
        start = now if now > next_free else next_free
        link.next_free = start + service
        link.busy_cycles += service
        link.requests += 1
        return start + service + self._noc_lat

    def _bank_of(self, addr: int) -> QueuedResource:
        line = addr // self.config.line_size_bytes
        return self.l2_banks[line % len(self.l2_banks)]

    def access_l2(
        self, now: int, addr: int, is_write: bool, traffic_class: str
    ) -> int:
        """One request at the L2: bank queueing, tags, DRAM on miss.

        Returns the time the L2 can answer (hit latency on a hit, DRAM
        completion on a miss).  Dirty evictions reserve DRAM bandwidth but
        do not delay the requester (writebacks are off the critical path).
        """
        # _bank_of + reserve, hand-inlined.
        bank = self.l2_banks[(addr // self._line) % self._nbanks]
        next_free = bank.next_free
        start = now if now > next_free else next_free
        bank.next_free = start + _L2_BANK_OCCUPANCY
        bank.busy_cycles += _L2_BANK_OCCUPANCY
        bank.requests += 1
        answered = start + self._l2_hit_lat
        result = self.l2.access(addr, is_write, traffic_class)
        if result.hit:
            return answered
        if result.evicted_dirty:
            # Fire-and-forget writeback of the victim line.
            self.dram.access(answered, result.evicted_line, result.writeback_class)
        return self.dram.access(answered, addr, traffic_class)

    # ------------------------------------------------------------------
    # Composed paths
    # ------------------------------------------------------------------
    def round_trip(
        self,
        now: int,
        addr: int,
        is_write: bool,
        request_bytes: int,
        response_bytes: int,
        traffic_class: str = "data",
        wait_for_response: bool = True,
    ) -> int:
        """An SM request through NoC→L2(→DRAM)→NoC; returns completion time.

        With ``wait_for_response=False`` (fire-and-forget stores) the
        resources are still reserved — the traffic exists and congests the
        fabric — but the returned time is the request's arrival at the L2,
        which is all the issuing warp waits for.
        """
        at_l2 = self.send_up(now, request_bytes)
        answered = self.access_l2(at_l2, addr, is_write, traffic_class)
        if not wait_for_response:
            return at_l2
        return self.send_down(answered, response_bytes)

    def l2_side_access(
        self, now: int, addr: int, is_write: bool, traffic_class: str
    ) -> int:
        """A detector-side access that starts and ends at the L2."""
        return self.access_l2(now, addr, is_write, traffic_class)
