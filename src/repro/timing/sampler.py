"""Utilization timeline sampling.

The timing model keeps only cumulative busy counters; the sampler
checkpoints them as simulated time passes, turning a run into utilization
*series* — how busy the NoC, DRAM and L2 were over each interval.  Enable
with ``GPU(..., sample_interval=N)`` and render with ``gpu.timeline()``:

    noc  ▁▂▅███▆▂▁  peak 97%
    dram ▁▁▃▅▆█▅▂▁  peak 81%

Useful for seeing *where* in a run detection's extra traffic bites (e.g.
1DC's NoC saturating during its atomic burst).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

_SPARKS = "▁▂▃▄▅▆▇█"


@dataclasses.dataclass
class Sample:
    time: int
    noc_busy: int  # cumulative cycles, both directions
    dram_busy: int  # cumulative cycles, all channels
    l2_busy: int  # cumulative cycles, all banks


class TimelineSampler:
    """Checkpoints fabric busy-counters every *interval* simulated cycles."""

    def __init__(self, fabric, interval: int):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.fabric = fabric
        self.interval = interval
        self.samples: List[Sample] = []
        self._next_at = 0

    def _snapshot(self, now: int) -> Sample:
        return Sample(
            time=now,
            noc_busy=self.fabric.noc_up.busy_cycles
            + self.fabric.noc_down.busy_cycles,
            dram_busy=self.fabric.dram.total_busy_cycles,
            l2_busy=sum(bank.busy_cycles for bank in self.fabric.l2_banks),
        )

    def maybe_sample(self, now: int) -> None:
        """Record a checkpoint if the clock passed the next sample point."""
        if now >= self._next_at:
            self.samples.append(self._snapshot(now))
            self._next_at = now + self.interval

    def finish(self, now: int) -> None:
        """Force a final checkpoint at the end of a launch."""
        if not self.samples or self.samples[-1].time < now:
            self.samples.append(self._snapshot(now))

    # ------------------------------------------------------------------
    def utilization_series(self) -> Dict[str, List[float]]:
        """Per-interval utilization (0..1) for each fabric resource."""
        noc_capacity = 2  # two link directions
        dram_capacity = self.fabric.dram.num_channels
        l2_capacity = len(self.fabric.l2_banks)
        series: Dict[str, List[float]] = {"noc": [], "dram": [], "l2": []}
        for prev, cur in zip(self.samples, self.samples[1:]):
            span = max(1, cur.time - prev.time)
            series["noc"].append(
                min(1.0, (cur.noc_busy - prev.noc_busy) / (span * noc_capacity))
            )
            series["dram"].append(
                min(1.0, (cur.dram_busy - prev.dram_busy) / (span * dram_capacity))
            )
            series["l2"].append(
                min(1.0, (cur.l2_busy - prev.l2_busy) / (span * l2_capacity))
            )
        return series

    def counter_events(self):
        """Flatten the timelines into ``(metric, cycle, value)`` triples.

        This is the bridge into the trace layer: registered as a counter
        source on a :class:`~repro.telemetry.tracing.Tracer`, each series
        becomes a Chrome counter track (``ph: "C"``) on the
        simulated-cycles timeline, so NoC/DRAM/L2 utilization renders
        alongside the kernel spans in Perfetto.
        """
        series = self.utilization_series()
        events = []
        for name in ("noc", "dram", "l2"):
            for sample, value in zip(self.samples[1:], series[name]):
                events.append(
                    (f"timing.{name}.utilization", sample.time, value)
                )
        return events

    def render(self, width: int = 60) -> str:
        """ASCII sparkline timeline of fabric utilization."""
        series = self.utilization_series()
        if not series["noc"]:
            return "(no samples)"
        lines = []
        for name in ("noc", "l2", "dram"):
            values = series[name]
            if len(values) > width:
                # Downsample by averaging buckets.
                bucket = len(values) / width
                values = [
                    sum(values[int(i * bucket):int((i + 1) * bucket) or 1])
                    / max(1, len(values[int(i * bucket):int((i + 1) * bucket)]))
                    for i in range(width)
                ]
            chars = "".join(
                _SPARKS[min(len(_SPARKS) - 1, int(v * len(_SPARKS)))]
                for v in values
            )
            peak = max(series[name])
            lines.append(f"{name:>4} {chars} peak {peak:.0%}")
        return "\n".join(lines)
