"""DRAM channel timing with a row-buffer model.

Addresses interleave across channels at line granularity.  Each channel
keeps its open row; a request to the open row pays ``t_cl`` + burst, a
request to a different row additionally pays precharge + activate
(Table V's GDDR5 parameters).  Every serviced request is counted under its
traffic class ("data" or "metadata"), which is the raw material of the
Fig. 9 DRAM-access breakdown.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import DramTiming
from repro.common.stats import CounterBag
from repro.timing.resource import QueuedResource


class DramModel:
    """A set of independent DRAM channels with open-row tracking."""

    def __init__(
        self,
        channels: int,
        timing: DramTiming,
        row_bytes: int,
        line_bytes: int,
        stats: CounterBag,
    ):
        self.timing = timing
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self.stats = stats
        self._channels: List[QueuedResource] = [
            QueuedResource(f"dram.ch{i}") for i in range(channels)
        ]
        self._open_row: Dict[int, int] = {}

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def channel_of(self, addr: int) -> int:
        return (addr // self.line_bytes) % len(self._channels)

    def access(self, now: int, addr: int, traffic_class: str) -> int:
        """Service one line-sized DRAM request; return its completion time."""
        channel_index = self.channel_of(addr)
        channel = self._channels[channel_index]
        row = addr // self.row_bytes
        if self._open_row.get(channel_index) == row:
            occupancy = self.timing.row_hit_latency
            self.stats.add(f"dram.row_hit.{traffic_class}")
        else:
            occupancy = self.timing.row_miss_latency
            self._open_row[channel_index] = row
            self.stats.add(f"dram.row_miss.{traffic_class}")
        self.stats.add(f"dram.access.{traffic_class}")
        return channel.reserve(now, occupancy)

    @property
    def total_busy_cycles(self) -> int:
        return sum(channel.busy_cycles for channel in self._channels)
