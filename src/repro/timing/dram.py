"""DRAM channel timing with a row-buffer model.

Addresses interleave across channels at line granularity.  Each channel
keeps its open row; a request to the open row pays ``t_cl`` + burst, a
request to a different row additionally pays precharge + activate
(Table V's GDDR5 parameters).  Every serviced request is counted under its
traffic class ("data" or "metadata"), which is the raw material of the
Fig. 9 DRAM-access breakdown.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import DramTiming
from repro.common.stats import CounterBag
from repro.timing.resource import QueuedResource


class DramModel:
    """A set of independent DRAM channels with open-row tracking."""

    def __init__(
        self,
        channels: int,
        timing: DramTiming,
        row_bytes: int,
        line_bytes: int,
        stats: CounterBag,
    ):
        self.timing = timing
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self.stats = stats
        self._channels: List[QueuedResource] = [
            QueuedResource(f"dram.ch{i}") for i in range(channels)
        ]
        self._open_row: Dict[int, int] = {}
        self._nch = channels
        self._lb = line_bytes
        self._rb = row_bytes
        self._t_hit = timing.row_hit_latency
        self._t_miss = timing.row_miss_latency
        self._c = stats.counters()
        # Counter names interned per traffic class (built per access, the
        # f-strings cost more than the bumps).
        self._keys: Dict[str, tuple] = {}

    def _keys_for(self, traffic_class: str) -> tuple:
        keys = self._keys.get(traffic_class)
        if keys is None:
            keys = (
                f"dram.row_hit.{traffic_class}",
                f"dram.row_miss.{traffic_class}",
                f"dram.access.{traffic_class}",
            )
            self._keys[traffic_class] = keys
        return keys

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def channel_of(self, addr: int) -> int:
        return (addr // self.line_bytes) % len(self._channels)

    def access(self, now: int, addr: int, traffic_class: str) -> int:
        """Service one line-sized DRAM request; return its completion time."""
        channel_index = (addr // self._lb) % self._nch
        channel = self._channels[channel_index]
        row = addr // self._rb
        keys = self._keys.get(traffic_class)
        if keys is None:
            keys = self._keys_for(traffic_class)
        c = self._c
        if self._open_row.get(channel_index) == row:
            occupancy = self._t_hit
            key = keys[0]
        else:
            occupancy = self._t_miss
            self._open_row[channel_index] = row
            key = keys[1]
        try:
            c[key] += 1
        except KeyError:
            c[key] = 1
        key = keys[2]
        try:
            c[key] += 1
        except KeyError:
            c[key] = 1
        # QueuedResource.reserve, hand-inlined.
        next_free = channel.next_free
        start = now if now > next_free else next_free
        channel.next_free = start + occupancy
        channel.busy_cycles += occupancy
        channel.requests += 1
        return start + occupancy

    @property
    def total_busy_cycles(self) -> int:
        return sum(channel.busy_cycles for channel in self._channels)
