"""Event queue and busy-until resources."""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for positive *b*."""
    return -(-a // b)


class QueuedResource:
    """A pipelined hardware resource with FIFO queueing.

    ``reserve`` occupies the resource for *occupancy* cycles starting at the
    earliest point at or after *now* when it is free, and reports when the
    request's *result* is available (*latency* cycles after the start, which
    may exceed the occupancy for pipelined structures).
    """

    __slots__ = ("name", "next_free", "busy_cycles", "requests")

    def __init__(self, name: str):
        self.name = name
        self.next_free = 0
        self.busy_cycles = 0  # total occupancy (utilization accounting)
        self.requests = 0

    def reserve(self, now: int, occupancy: int, latency: int = -1) -> int:
        """Reserve the resource; return the completion time of the request."""
        if latency < 0:
            latency = occupancy
        start = now if now > self.next_free else self.next_free
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        self.requests += 1
        return start + latency

    def backlog(self, now: int) -> int:
        """Cycles of queued work ahead of a request arriving at *now*."""
        lag = self.next_free - now
        return lag if lag > 0 else 0


class EventQueue:
    """A time-ordered queue of callbacks (min-heap, FIFO at equal times)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        self.now = 0

    def schedule(self, time: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(time)`` when the clock reaches *time*."""
        if time < self.now:
            time = self.now
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback))

    def run(
        self,
        max_events: int = 0,
        watcher: Callable[[int, int], None] = None,
        watch_interval: int = 4096,
    ) -> int:
        """Drain the queue; returns the number of events processed.

        *max_events* > 0 bounds the run (livelock guard for spinning
        kernels whose partner never arrives).  *watcher*, if given, is
        called as ``watcher(now, processed)`` every *watch_interval*
        events — a hook for wall-clock watchdogs and heartbeats; any
        exception it raises aborts the run and propagates.
        """
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, callback = pop(heap)
            self.now = time
            callback(time)
            processed += 1
            if watcher is not None and processed % watch_interval == 0:
                watcher(time, processed)
            if max_events and processed >= max_events:
                break
        return processed

    @property
    def empty(self) -> bool:
        return not self._heap
