"""Discrete-event timing models.

The simulator is an approximate queueing model: every shared hardware
structure (NoC links, L2 banks, DRAM channels, the race-detector port) is a
:class:`~repro.timing.resource.QueuedResource` with a busy-until horizon.
Because the engine processes warp-issue events in global time order,
reserving a resource is equivalent to FIFO queueing at that resource, which
captures the contention effects the paper's evaluation hinges on (metadata
traffic fighting data traffic for L2/DRAM, detection packets congesting the
NoC, detector back-pressure stalling L1 hits).
"""

from repro.timing.dram import DramModel
from repro.timing.fabric import TimingFabric
from repro.timing.resource import EventQueue, QueuedResource, ceil_div

__all__ = [
    "DramModel",
    "EventQueue",
    "QueuedResource",
    "TimingFabric",
    "ceil_div",
]
